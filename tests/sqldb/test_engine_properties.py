"""Property-based tests for the SQL engine.

Two harnesses live here:

* hypothesis properties over a fixed two-column table (the original
  suite), and
* the seeded differential fuzzer (``TestDifferentialFuzz``) that
  generates random schemas, tables, append streams and queries and holds
  the compiled columnar path (:mod:`repro.sqldb.compile`) equal to the
  frozen row-scan reference — result rows *and* raised errors — plus
  incrementally-maintained indexes equal to rebuilt-from-scratch ones.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqldb import Database, plan_for
from repro.sqldb.parser import parse_statement


def _fresh_db(values):
    db = Database()
    db.create_table("t", [("x", "REAL"), ("tag", "TEXT")])
    db.insert_rows("t", [{"x": v, "tag": "even" if i % 2 == 0 else "odd"} for i, v in enumerate(values)])
    return db


values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
)


class TestEngineProperties:
    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_count_matches_python(self, values):
        db = _fresh_db(values)
        assert db.query("SELECT COUNT(*) FROM t").scalar() == len(values)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_python(self, values):
        db = _fresh_db(values)
        result = db.query("SELECT SUM(x) FROM t").scalar()
        if not values:
            assert result is None
        else:
            assert abs(result - sum(values)) <= 1e-6 * max(1.0, abs(sum(values)))

    @given(values=values_strategy, threshold=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_where_filter_matches_python(self, values, threshold):
        db = _fresh_db(values)
        result = db.query(f"SELECT x FROM t WHERE x >= {threshold!r}")
        expected = [v for v in values if v >= threshold]
        assert sorted(result.column("x")) == sorted(expected)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_where_partition_is_complete(self, values):
        """Rows matching a predicate plus rows matching its negation = all rows."""
        db = _fresh_db(values)
        positive = len(db.query("SELECT x FROM t WHERE x >= 0"))
        negative = len(db.query("SELECT x FROM t WHERE NOT x >= 0"))
        assert positive + negative == len(values)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, values):
        db = _fresh_db(values)
        ordered = db.query("SELECT x FROM t ORDER BY x").column("x")
        assert ordered == sorted(values)

    @given(values=values_strategy, limit=st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_limit_bounds_result(self, values, limit):
        db = _fresh_db(values)
        result = db.query(f"SELECT x FROM t LIMIT {limit}")
        assert len(result) == min(limit, len(values))

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_group_by_counts_sum_to_total(self, values):
        db = _fresh_db(values)
        result = db.query("SELECT tag, COUNT(*) FROM t GROUP BY tag")
        assert sum(row[1] for row in result.rows) == len(values)


# -- seeded differential fuzzer ------------------------------------------------
#
# 40 parametrized cases x (8 base + 4 post-append) queries = ~480 seeded
# differential checks per run, deterministic under FUZZ_SEED.

FUZZ_SEED = "sqldb-diff-20260808"
FUZZ_CASES = 40

_COLUMN_TYPES = ("INTEGER", "REAL", "TEXT", "BOOLEAN")
_NAME_POOL = ["id", "x", "Val", "tag", "score", "OK", "n"]
_TEXT_VOCAB = ("a", "bb", "ccc", "even", "odd", "zz", "")
_LIKE_PATTERNS = ("b%", "%c%", "a", "_b", "%", "z_")
_OPERATORS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def _fuzz_rng(case_seed: int, purpose: str) -> random.Random:
    return random.Random(f"{FUZZ_SEED}-{case_seed}-{purpose}")


def _fuzz_schema(rng: random.Random) -> list[tuple[str, str]]:
    names = _NAME_POOL[:]
    rng.shuffle(names)
    return [(name, rng.choice(_COLUMN_TYPES)) for name in names[: rng.randint(2, 5)]]


def _fuzz_value(rng: random.Random, sql_type: str):
    """A random typed value (or NULL).  NaN is deliberately excluded: its
    identity-sensitive behavior in dict keys and ``in`` makes any two ways
    of materializing the same row diverge, so it is outside the engine
    contract (the B+Tree still quarantines it defensively; see
    tests/sqldb/test_indexes.py)."""
    if rng.random() < 0.15:
        return None
    if sql_type == "INTEGER":
        roll = rng.random()
        if roll < 0.55:
            return rng.randint(0, 9)
        if roll < 0.92:
            return rng.randint(-(10**4), 10**4)
        return rng.choice([2**70, -(2**70)])  # forces typed-array demotion
    if sql_type == "REAL":
        if rng.random() < 0.3:
            return rng.choice([0.0, 1.5, -2.25, math.inf, -math.inf])
        return round(rng.uniform(-100.0, 100.0), 3)
    if sql_type == "TEXT":
        if rng.random() < 0.8:
            return rng.choice(_TEXT_VOCAB)
        return "".join(rng.choice("abcz") for _ in range(rng.randint(1, 5)))
    return rng.random() < 0.5


def _render_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


def _fuzz_literal(rng: random.Random, sql_type: str) -> str:
    """SQL text of a random literal, usually type-matched, sometimes not."""
    roll = rng.random()
    if roll < 0.08:
        return "NULL"
    if roll < 0.2:  # mismatched type: exercises probe gating + error parity
        sql_type = rng.choice([t for t in _COLUMN_TYPES if t != sql_type])
    if sql_type == "INTEGER" and rng.random() < 0.12:
        return repr(rng.choice([-(10**6), 10**6]))  # all-match / none-match
    while True:
        value = _fuzz_value(rng, sql_type)
        if isinstance(value, float) and math.isinf(value):
            continue  # 'inf' lexes as an identifier, not a number
        return _render_literal(value)


def _fuzz_column(rng: random.Random, schema) -> tuple[str, str]:
    """A column reference (maybe case-twisted, rarely bogus) and its type."""
    name, sql_type = schema[rng.randrange(len(schema))]
    roll = rng.random()
    if roll < 0.08:
        return name.lower() if name != name.lower() else name.upper(), sql_type
    if roll < 0.11:
        return "nope", sql_type
    return name, sql_type


def _fuzz_predicate(rng: random.Random, schema, depth: int = 0) -> str:
    branch = rng.random() if depth < 2 else 1.0
    if branch < 0.12:
        return f"NOT {_fuzz_predicate(rng, schema, depth + 1)}"
    if branch < 0.32:
        op = "AND" if rng.random() < 0.6 else "OR"
        left = _fuzz_predicate(rng, schema, depth + 1)
        right = _fuzz_predicate(rng, schema, depth + 1)
        return f"({left} {op} {right})"
    column, sql_type = _fuzz_column(rng, schema)
    leaf = rng.random()
    if leaf < 0.45:
        op = rng.choice(_OPERATORS)
        literal = _fuzz_literal(rng, sql_type)
        if rng.random() < 0.2:
            return f"{literal} {op} {column}"
        return f"{column} {op} {literal}"
    if leaf < 0.6:
        low = _fuzz_literal(rng, sql_type)
        high = _fuzz_literal(rng, sql_type)
        return f"{column} BETWEEN {low} AND {high}"
    if leaf < 0.75:
        choices = ", ".join(
            _fuzz_literal(rng, sql_type) for _ in range(rng.randint(1, 4))
        )
        return f"{column} IN ({choices})"
    if leaf < 0.85:
        return f"{column} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
    return f"{column} LIKE '{rng.choice(_LIKE_PATTERNS)}'"


def _fuzz_where(rng: random.Random, schema) -> str:
    if rng.random() < 0.12:
        return ""
    # Half the time lead with a probe-shaped conjunct (column op literal)
    # so the fuzzer actually walks the hash/tree index paths.
    if rng.random() < 0.5:
        column, sql_type = schema[rng.randrange(len(schema))]
        kind = rng.random()
        if kind < 0.4:
            lead = f"{column} = {_fuzz_literal(rng, sql_type)}"
        elif kind < 0.65:
            lead = (
                f"{column} BETWEEN {_fuzz_literal(rng, sql_type)}"
                f" AND {_fuzz_literal(rng, sql_type)}"
            )
        elif kind < 0.85:
            op = rng.choice(("<", "<=", ">", ">="))
            lead = f"{column} {op} {_fuzz_literal(rng, sql_type)}"
        else:
            choices = ", ".join(
                _fuzz_literal(rng, sql_type) for _ in range(rng.randint(1, 3))
            )
            lead = f"{column} IN ({choices})"
        if rng.random() < 0.5:
            return f" WHERE {lead} AND {_fuzz_predicate(rng, schema, 1)}"
        return f" WHERE {lead}"
    return f" WHERE {_fuzz_predicate(rng, schema)}"


def _fuzz_select(rng: random.Random, schema) -> str:
    aggregates = ("COUNT", "SUM", "AVG", "MIN", "MAX")
    shape = rng.random()
    order_candidates = [name for name, _ in schema]
    if shape < 0.2:
        items = "*"
    elif shape < 0.4:  # aggregate-only
        parts = []
        for _ in range(rng.randint(1, 3)):
            function = rng.choice(aggregates)
            argument = "*" if function == "COUNT" and rng.random() < 0.4 else (
                _fuzz_column(rng, schema)[0]
            )
            alias = f" AS agg{rng.randrange(10)}" if rng.random() < 0.3 else ""
            parts.append(f"{function}({argument}){alias}")
        items = ", ".join(parts)
    elif shape < 0.55:  # GROUP BY
        group_columns = [
            schema[i][0]
            for i in rng.sample(range(len(schema)), rng.randint(1, min(2, len(schema))))
        ]
        parts = list(group_columns) if rng.random() < 0.7 else []
        for _ in range(rng.randint(1, 2)):
            function = rng.choice(aggregates)
            argument = "*" if function == "COUNT" and rng.random() < 0.4 else (
                _fuzz_column(rng, schema)[0]
            )
            parts.append(f"{function}({argument})")
        rng.shuffle(parts)
        items = ", ".join(parts)
        sql = f"SELECT {items} FROM t{_fuzz_where(rng, schema)}"
        sql += f" GROUP BY {', '.join(group_columns)}"
        if rng.random() < 0.3:
            sql += f" LIMIT {rng.randint(0, 6)}"
        return sql
    else:  # plain projection, maybe aliased / case-twisted
        parts = []
        for _ in range(rng.randint(1, min(3, len(schema)))):
            column = _fuzz_column(rng, schema)[0]
            if rng.random() < 0.25:
                alias = f"a{rng.randrange(10)}"
                parts.append(f"{column} AS {alias}")
                order_candidates.append(alias)
            else:
                parts.append(column)
        items = ", ".join(parts)
    sql = f"SELECT {items} FROM t{_fuzz_where(rng, schema)}"
    if shape >= 0.4 and rng.random() < 0.45:
        column = rng.choice(order_candidates)
        if rng.random() < 0.1:
            column = column.upper()
        sql += f" ORDER BY {column}{' DESC' if rng.random() < 0.5 else ''}"
    if rng.random() < 0.35:
        sql += f" LIMIT {rng.randint(0, 9)}"
    return sql


def _fuzz_case(case_seed: int):
    """Deterministic (schema, initial rows, queries, append batches, post queries)."""
    rng = _fuzz_rng(case_seed, "case")
    schema = _fuzz_schema(rng)
    row_count = rng.choice([0, 1, 4, rng.randint(20, 80)])
    rows = [
        {name: _fuzz_value(rng, sql_type) for name, sql_type in schema}
        for _ in range(row_count)
    ]
    queries = [_fuzz_select(rng, schema) for _ in range(8)]
    batches = [
        [
            {name: _fuzz_value(rng, sql_type) for name, sql_type in schema}
            for _ in range(rng.randint(1, 12))
        ]
        for _ in range(rng.randint(1, 3))
    ]
    post_queries = [_fuzz_select(rng, schema) for _ in range(4)]
    return schema, rows, queries, batches, post_queries


def _make_db(schema, rows, force_scan: bool) -> Database:
    db = Database()
    db.force_scan = force_scan
    db.create_table("t", list(schema))
    db.insert_rows("t", rows)
    return db


def _normalize(value):
    """NaN compares unequal to itself; fold it to a sentinel so two paths
    that both computed NaN (e.g. SUM over +inf and -inf) compare equal."""
    if isinstance(value, float) and math.isnan(value):
        return "<NaN>"
    return value


def _outcome(db: Database, sql: str):
    """A comparable result: (columns, rows) or the raised error, verbatim."""
    try:
        result = db.query(sql)
    except Exception as exc:  # noqa: BLE001 — parity includes error behavior
        return ("error", type(exc).__name__, str(exc))
    rows = tuple(tuple(_normalize(value) for value in row) for row in result.rows)
    return ("rows", tuple(result.columns), rows)


class TestDifferentialFuzz:
    """Compiled columnar path ≡ frozen row-scan reference, case by case."""

    @pytest.mark.parametrize("case_seed", range(FUZZ_CASES))
    def test_compiled_matches_scan(self, case_seed):
        schema, rows, queries, batches, post_queries = _fuzz_case(case_seed)
        reference = _make_db(schema, rows, force_scan=True)
        compiled = _make_db(schema, rows, force_scan=False)
        for sql in queries:
            assert _outcome(reference, sql) == _outcome(compiled, sql), sql
        for batch in batches:
            reference.insert_rows("t", batch)
            compiled.insert_rows("t", batch)
            for sql in queries[:2]:
                assert _outcome(reference, sql) == _outcome(compiled, sql), sql
        for sql in post_queries:
            assert _outcome(reference, sql) == _outcome(compiled, sql), sql

    @pytest.mark.parametrize("case_seed", range(FUZZ_CASES))
    def test_incremental_indexes_equal_rebuilt(self, case_seed):
        """After the append stream, an incrementally-maintained store answers
        every probe exactly like one rebuilt from scratch over the final rows."""
        schema, rows, queries, batches, post_queries = _fuzz_case(case_seed)
        incremental = _make_db(schema, rows, force_scan=False)
        for sql in queries:  # builds the store + indexes over the initial rows
            _outcome(incremental, sql)
        store = incremental.table("t").column_store
        rebuilds_before = store.rebuilds
        for batch in batches:
            incremental.insert_rows("t", batch)
            for sql in queries[:3]:
                _outcome(incremental, sql)
        rebuilt = _make_db(schema, rows, force_scan=False)
        for batch in batches:
            rebuilt.insert_rows("t", batch)
        for sql in queries + post_queries:
            assert _outcome(incremental, sql) == _outcome(rebuilt, sql), sql
        # Appends must have been folded in place, never via rebuild.
        assert store.rebuilds == rebuilds_before
        # Structural equality of the maintained indexes vs fresh ones.
        fresh_store = rebuilt.table("t").column_store
        for name, _ in schema:
            if name in store.index_stats():
                tree = store._trees.get(name)
                if tree is not None:
                    tree.check_invariants()
                    assert tree.keys() == fresh_store.tree_index(name).keys()
                hash_index = store._hash.get(name)
                if hash_index is not None:
                    fresh_hash = fresh_store.hash_index(name)
                    for key in hash_index.keys():
                        assert hash_index.lookup(key) == fresh_hash.lookup(key)

    def test_fuzzer_exercises_index_probes(self):
        """Guard the generator itself: a healthy share of fuzzed queries must
        compile to hash or tree probes, or the differential suite would be
        silently testing only the residual path."""
        probe_kinds = {"hash-eq": 0, "hash-in": 0, "tree-range": 0, "other": 0}
        total = 0
        for case_seed in range(FUZZ_CASES):
            schema, _, queries, _, post_queries = _fuzz_case(case_seed)
            columns = _make_db(schema, [], force_scan=False).table("t").columns
            for sql in queries + post_queries:
                try:
                    plan = plan_for(parse_statement(sql), columns)
                except Exception:  # noqa: BLE001 — fallbacks are fine here
                    continue
                total += 1
                description = plan.describe()
                for kind in ("hash-eq", "hash-in", "tree-range"):
                    if kind in description:
                        probe_kinds[kind] += 1
                        break
                else:
                    probe_kinds["other"] += 1
        assert total >= 200, "fuzzer should generate at least 200 compilable queries"
        assert probe_kinds["hash-eq"] >= 20
        assert probe_kinds["hash-in"] >= 10
        assert probe_kinds["tree-range"] >= 20


# -- shard-arena differential axis --------------------------------------------
#
# Arena ≡ per-client-columnar ≡ row-scan, member for member, including
# errors, across append streams and membership replacement.  Mixed-schema
# members must be flagged for per-client fallback, never silently answered.

from repro.sqldb import ARENA_FALLBACK, ShardArena, arena_select_per_client  # noqa: E402

_SHARD_MEMBERS = 4


def _arena_outcome(entry, member: Database, sql: str):
    """One member's arena outcome in `_outcome` form; fallback markers mean
    the member answers itself on its own compiled path."""
    if entry is ARENA_FALLBACK:
        return _outcome(member, sql)
    if isinstance(entry, BaseException):
        return ("error", type(entry).__name__, str(entry))
    rows = tuple(tuple(_normalize(value) for value in row) for row in entry.rows)
    return ("rows", tuple(entry.columns), rows)


def _member_row_subsets(rows, case_seed: int, purpose: str):
    rng = _fuzz_rng(case_seed, purpose)
    return [
        [row for row in rows if rng.random() < 0.7] for _ in range(_SHARD_MEMBERS)
    ]


class TestArenaDifferentialFuzz:
    """Shard-wide arena answering against both frozen oracles."""

    def _check(self, arena, members, references, sql):
        outcomes = arena_select_per_client(arena, sql)
        for index, (member, reference) in enumerate(zip(members, references)):
            expected = _outcome(reference, sql)  # row-scan oracle
            assert _outcome(member, sql) == expected, sql  # per-client oracle
            if outcomes is None:  # statement-level fallback: answer locally
                got = _outcome(member, sql)
            else:
                got = _arena_outcome(outcomes[index], member, sql)
            assert got == expected, sql

    @pytest.mark.parametrize("case_seed", range(FUZZ_CASES))
    def test_arena_matches_per_client_and_scan(self, case_seed):
        schema, rows, queries, batches, post_queries = _fuzz_case(case_seed)
        subsets = _member_row_subsets(rows, case_seed, "members")
        members = [_make_db(schema, subset, force_scan=False) for subset in subsets]
        references = [_make_db(schema, subset, force_scan=True) for subset in subsets]
        arena = ShardArena(members)
        for sql in queries:
            self._check(arena, members, references, sql)
        for batch_index, batch in enumerate(batches):
            for subset, member, reference in zip(
                _member_row_subsets(batch, case_seed, f"append-{batch_index}"),
                members,
                references,
            ):
                if subset:
                    member.insert_rows("t", subset)
                    reference.insert_rows("t", subset)
            for sql in queries[:2]:
                self._check(arena, members, references, sql)
        for sql in post_queries:
            self._check(arena, members, references, sql)

    @pytest.mark.parametrize("case_seed", range(0, FUZZ_CASES, 5))
    def test_membership_replacement_requires_rebuild(self, case_seed):
        """Churn that swaps a member database breaks identity `matches`; a
        fresh arena over the new membership answers correctly again."""
        schema, rows, queries, _, _ = _fuzz_case(case_seed)
        subsets = _member_row_subsets(rows, case_seed, "members")
        members = [_make_db(schema, subset, force_scan=False) for subset in subsets]
        references = [_make_db(schema, subset, force_scan=True) for subset in subsets]
        arena = ShardArena(members)
        assert arena.matches(members)
        replacement_rows = subsets[1] + subsets[0][:2]
        members[1] = _make_db(schema, replacement_rows, force_scan=False)
        references[1] = _make_db(schema, replacement_rows, force_scan=True)
        assert not arena.matches(members)
        rebuilt = ShardArena(members)
        for sql in queries[:4]:
            self._check(rebuilt, members, references, sql)

    def test_mixed_schema_member_falls_back_per_client(self):
        """A member whose table diverges from the arena schema must be flagged
        ARENA_FALLBACK — and stay flagged when its schema changes later —
        while co-shard members keep shard-wide answers."""
        matching = [
            _make_db([("x", "INTEGER"), ("tag", "TEXT")], rows, force_scan=False)
            for rows in (
                [{"x": 1, "tag": "a"}, {"x": 2, "tag": "bb"}],
                [{"x": 2, "tag": "ccc"}],
            )
        ]
        odd = Database()
        odd.create_table("t", [("x", "TEXT"), ("extra", "REAL")])
        odd.insert_rows("t", [{"x": "2", "extra": 1.5}])
        members = [matching[0], odd, matching[1]]
        arena = ShardArena(members)
        sql = "SELECT x FROM t WHERE x = 2"
        outcomes = arena_select_per_client(arena, sql)
        assert outcomes is not None
        assert outcomes[1] is ARENA_FALLBACK
        for index in (0, 2):
            assert outcomes[index] is not ARENA_FALLBACK
            assert _arena_outcome(outcomes[index], members[index], sql) == _outcome(
                members[index], sql
            )
        # The fallback is an answer-it-yourself marker, not a wrong answer.
        assert _arena_outcome(outcomes[1], odd, sql) == _outcome(odd, sql)
        # Excluded members don't poison incremental maintenance either.
        odd.insert_rows("t", [{"x": "9", "extra": 0.0}])
        matching[0].insert_rows("t", [{"x": 2, "tag": "zz"}])
        outcomes = arena_select_per_client(arena, sql)
        assert outcomes[1] is ARENA_FALLBACK
        assert _arena_outcome(outcomes[0], members[0], sql) == _outcome(
            members[0], sql
        )

    def test_missing_table_everywhere_is_statement_level_fallback(self):
        members = [_make_db([("x", "INTEGER")], [{"x": 1}], force_scan=False)]
        arena = ShardArena(members)
        assert arena_select_per_client(arena, "SELECT x FROM nope") is None

    def test_per_database_force_scan_pins_that_member_only(self):
        subsets = [[{"x": 1}], [{"x": 2}], [{"x": 1}]]
        members = [_make_db([("x", "INTEGER")], s, force_scan=False) for s in subsets]
        members[1].force_scan = True
        arena = ShardArena(members)
        outcomes = arena_select_per_client(arena, "SELECT x FROM t WHERE x = 1")
        assert outcomes[1] is ARENA_FALLBACK
        assert outcomes[0] is not ARENA_FALLBACK
        assert outcomes[2] is not ARENA_FALLBACK
