"""Tests for table and column definitions."""

import pytest

from repro.sqldb.errors import SchemaError
from repro.sqldb.table import Column, Table


class TestColumn:
    def test_integer_conversion(self):
        assert Column("x", "INTEGER").convert("5") == 5

    def test_real_conversion(self):
        assert Column("x", "REAL").convert("2.5") == 2.5

    def test_text_conversion(self):
        assert Column("x", "TEXT").convert(10) == "10"

    def test_none_passes_through(self):
        assert Column("x", "INTEGER").convert(None) is None

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "BLOB")

    def test_bad_value_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "INTEGER").convert("not-a-number")

    def test_case_insensitive_type(self):
        assert Column("x", "integer").convert("7") == 7


class TestTable:
    def _table(self) -> Table:
        return Table(name="t", columns=[Column("a", "INTEGER"), Column("b", "TEXT")])

    def test_insert_positional(self):
        table = self._table()
        table.insert([1, "x"])
        assert table.rows == [(1, "x")]

    def test_insert_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            self._table().insert([1])

    def test_insert_with_columns_fills_missing_with_none(self):
        table = self._table()
        table.insert(["hello"], column_names=["b"])
        assert table.rows == [(None, "hello")]

    def test_insert_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            self._table().insert([1], column_names=["zzz"])

    def test_insert_dict(self):
        table = self._table()
        table.insert_dict({"a": "3", "b": 9})
        assert table.rows == [(3, "9")]

    def test_scan_yields_dicts(self):
        table = self._table()
        table.insert([1, "x"])
        table.insert([2, "y"])
        assert list(table.scan()) == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_column_index_case_insensitive(self):
        table = self._table()
        assert table.column_index("A") == 0

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            self._table().column_index("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=[Column("a"), Column("a")])

    def test_len(self):
        table = self._table()
        assert len(table) == 0
        table.insert([1, "x"])
        assert len(table) == 1
