"""Unit tests for the predicate compiler: probe selection, soundness
gates, plan caching, and the SQLDB_FORCE_SCAN escape hatch."""

import pytest

from repro.sqldb import CompileFallback, Database, plan_for
from repro.sqldb import ast
from repro.sqldb.parser import parse_statement


def _db():
    db = Database()
    db.create_table(
        "t", [("x", "INTEGER"), ("y", "REAL"), ("tag", "TEXT"), ("ok", "BOOLEAN")]
    )
    db.insert_rows(
        "t",
        [
            {"x": 1, "y": 1.0, "tag": "a", "ok": True},
            {"x": 2, "y": None, "tag": "bb", "ok": False},
            {"x": 2, "y": 3.5, "tag": None, "ok": True},
            {"x": 9, "y": -1.0, "tag": "ccc", "ok": None},
        ],
    )
    return db


def _plan(db, sql):
    return plan_for(parse_statement(sql), db.table("t").columns)


class TestProbeSelection:
    @pytest.mark.parametrize(
        ("sql", "expected"),
        [
            ("SELECT * FROM t", "all"),
            ("SELECT * FROM t WHERE x = 2", "hash-eq(x)"),
            ("SELECT * FROM t WHERE 2 = x", "hash-eq(x)"),
            ("SELECT * FROM t WHERE tag IN ('a', 'bb')", "hash-in(tag)"),
            ("SELECT * FROM t WHERE x BETWEEN 1 AND 5", "tree-range(x)"),
            ("SELECT * FROM t WHERE x > 3", "tree-range(x)"),
            ("SELECT * FROM t WHERE 3 > x", "tree-range(x)"),
            ("SELECT * FROM t WHERE tag < 'm'", "tree-range(tag)"),
            ("SELECT * FROM t WHERE x = 2 AND y > 0", "hash-eq(x)+residual"),
            ("SELECT * FROM t WHERE x != 2", "residual"),
            ("SELECT * FROM t WHERE x IS NULL", "residual"),
            ("SELECT * FROM t WHERE x = NULL", "empty"),
        ],
    )
    def test_plan_shapes(self, sql, expected):
        assert _plan(_db(), sql).describe() == expected

    def test_only_first_conjunct_probes(self):
        # The scan engine short-circuits conjuncts left to right; probing a
        # later conjunct would skip evaluations (and errors) the reference
        # performs, so only the leading conjunct may be probed.
        db = _db()
        assert _plan(db, "SELECT * FROM t WHERE y IS NULL AND x = 2").describe() == (
            "residual"
        )
        assert _plan(db, "SELECT * FROM t WHERE x = 2 AND y IS NULL").describe() == (
            "hash-eq(x)+residual"
        )

    def test_range_probe_requires_type_compatible_literal(self):
        # TEXT < 5 raises TypeError row by row under the scan engine; the
        # residual path must be the one to reproduce that, so no probe.
        db = _db()
        assert _plan(db, "SELECT * FROM t WHERE tag < 5").describe() == "residual"
        assert _plan(db, "SELECT * FROM t WHERE x < 'm'").describe() == "residual"
        # Equality never raises, so it probes regardless of literal type.
        assert _plan(db, "SELECT * FROM t WHERE x = 'm'").describe() == "hash-eq(x)"

    def test_unknown_probe_column_falls_to_residual(self):
        assert _plan(_db(), "SELECT * FROM t WHERE nope = 1").describe() == "residual"

    def test_case_insensitive_probe_column(self):
        assert _plan(_db(), "SELECT * FROM t WHERE X = 2").describe() == "hash-eq(x)"


class TestProbeResults:
    def test_null_equality_probe_matches_nothing(self):
        db = _db()
        assert db.query("SELECT COUNT(*) FROM t WHERE tag = NULL").scalar() == 0

    def test_in_with_null_choice_matches_null_rows(self):
        # value in (None, ...) is True for NULL rows under the scan engine.
        db = _db()
        result = db.query("SELECT x FROM t WHERE tag IN (NULL, 'a')")
        assert result.column("x") == [1, 2]

    def test_matching_ids_are_row_ordered(self):
        db = _db()
        plan = _plan(db, "SELECT * FROM t WHERE x = 2")
        ids = plan.matching_ids(db.table("t").column_store)
        assert list(ids) == [1, 2]


class TestPlanCache:
    def test_same_statement_and_schema_share_a_plan(self):
        db = _db()
        first = _plan(db, "SELECT * FROM t WHERE x = 2")
        second = _plan(db, "SELECT  *  FROM t WHERE x = 2")  # same AST
        assert first is second

    def test_different_schema_gets_a_different_plan(self):
        db = _db()
        other = Database()
        other.create_table("t", [("x", "TEXT")])
        statement = parse_statement("SELECT * FROM t WHERE x = 'a'")
        assert plan_for(statement, db.table("t").columns) is not plan_for(
            statement, other.table("t").columns
        )

    def test_fallback_is_raised_and_cached(self):
        statement = ast.SelectStatement(
            table="t",
            items=(ast.SelectItem(column="x"),),
            where=ast.Comparison(
                left=ast.ColumnRef(name="x"),
                operator="LOLWUT",
                right=ast.Literal(value=1),
            ),
        )
        columns = _db().table("t").columns
        for _ in range(2):  # second hit comes from the cached fallback
            with pytest.raises(CompileFallback):
                plan_for(statement, columns)


class TestPlanCacheLRU:
    """Regression tests for LRU eviction: the old cache evicted by wholesale
    ``clear()`` at capacity, throwing away every hot plan."""

    def _fill_past_capacity(self, db, hot_sql, touch_hot):
        from repro.sqldb import compile as compile_mod

        hot = _plan(db, hot_sql)
        for i in range(compile_mod._PLAN_CACHE_MAX):
            _plan(db, f"SELECT * FROM t WHERE x = {i}")
            if touch_hot:
                _plan(db, hot_sql)
        return hot

    def test_hot_plan_survives_cache_pressure(self):
        # 512 cold compilations used to clear() the whole cache; under LRU
        # the re-touched hot plan must come back as the very same object.
        db = _db()
        hot_sql = "SELECT * FROM t WHERE tag = 'a'"
        hot = self._fill_past_capacity(db, hot_sql, touch_hot=True)
        assert _plan(db, hot_sql) is hot

    def test_untouched_plan_is_evicted_oldest_first(self):
        db = _db()
        cold_sql = "SELECT * FROM t WHERE tag = 'bb'"
        cold = self._fill_past_capacity(db, cold_sql, touch_hot=False)
        assert _plan(db, cold_sql) is not cold

    def test_cache_never_exceeds_capacity(self):
        from repro.sqldb import compile as compile_mod

        db = _db()
        for i in range(compile_mod._PLAN_CACHE_MAX + 64):
            _plan(db, f"SELECT * FROM t WHERE x > {i}")
        assert len(compile_mod._PLAN_CACHE) <= compile_mod._PLAN_CACHE_MAX

    def test_fallback_entries_survive_as_lru_citizens(self):
        # A cached negative entry must behave like any other: re-raised on
        # hit, evictable under pressure without corrupting the cache.
        statement = ast.SelectStatement(
            table="t",
            items=(ast.SelectItem(column="x"),),
            where=ast.Comparison(
                left=ast.ColumnRef(name="x"),
                operator="LOLWUT",
                right=ast.Literal(value=1),
            ),
        )
        db = _db()
        columns = db.table("t").columns
        with pytest.raises(CompileFallback):
            plan_for(statement, columns)
        for i in range(16):
            _plan(db, f"SELECT * FROM t WHERE y > {i}.5")
        with pytest.raises(CompileFallback):
            plan_for(statement, columns)

    def test_concurrent_lookup_insert_is_safe(self):
        # The thread-pool and pipelined-overlap schedulers compile from
        # worker threads; hammer the cache from several threads at once and
        # require every thread to resolve every statement to the same plan.
        import threading

        db = _db()
        sqls = [f"SELECT * FROM t WHERE x = {i}" for i in range(32)]
        statements = [parse_statement(sql) for sql in sqls]
        columns = db.table("t").columns
        errors = []
        results = [dict() for _ in range(8)]

        def worker(slot):
            try:
                for _ in range(20):
                    for index, statement in enumerate(statements):
                        results[slot][index] = plan_for(statement, columns)
            except Exception as exc:  # noqa: BLE001 - surfaced via the list
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for index in range(len(statements)):
            plans = {id(result[index]) for result in results}
            assert len(plans) == 1  # every thread saw one shared plan


class TestForceScan:
    def test_env_var_pins_the_scan_path(self, monkeypatch):
        db = _db()
        monkeypatch.setenv("SQLDB_FORCE_SCAN", "1")
        assert db._scan_forced()
        assert db.query("SELECT x FROM t WHERE x = 2").column("x") == [2, 2]
        # The reference path must not have built a columnar mirror.
        assert db.table("t")._store is None

    @pytest.mark.parametrize("value", ["", "0", "false", "False"])
    def test_falsey_env_values_keep_the_compiled_path(self, value, monkeypatch):
        db = _db()
        monkeypatch.setenv("SQLDB_FORCE_SCAN", value)
        assert not db._scan_forced()

    def test_attribute_pins_per_database(self, monkeypatch):
        monkeypatch.delenv("SQLDB_FORCE_SCAN", raising=False)
        db = _db()
        db.force_scan = True
        assert db._scan_forced()
        db.query("SELECT x FROM t WHERE x = 2")
        assert db.table("t")._store is None

    def test_both_paths_agree_mid_process_flip(self, monkeypatch):
        db = _db()
        monkeypatch.setenv("SQLDB_FORCE_SCAN", "1")
        scanned = db.query("SELECT * FROM t WHERE x >= 2 ORDER BY x DESC").rows
        monkeypatch.setenv("SQLDB_FORCE_SCAN", "0")
        compiled = db.query("SELECT * FROM t WHERE x >= 2 ORDER BY x DESC").rows
        assert scanned == compiled
