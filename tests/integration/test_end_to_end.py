"""Integration tests: the full client -> proxy -> aggregator -> analyst path."""

import random

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.analytics import histogram_accuracy_loss


def build_system(num_clients: int, seed: int, num_proxies: int = 2) -> PrivApproxSystem:
    system = PrivApproxSystem(
        SystemConfig(num_clients=num_clients, num_proxies=num_proxies, seed=seed)
    )
    rng = random.Random(seed)
    system.provision_clients(
        [("value", "REAL"), ("region", "TEXT")],
        lambda i: [{"value": rng.gammavariate(2.0, 1.0), "region": "metro"}],
    )
    return system


def submit(system: PrivApproxSystem, params: ExecutionParameters):
    analyst = Analyst("e2e")
    query = analyst.create_query(
        "SELECT value FROM private_data WHERE region = 'metro'",
        AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0, 3.0, 4.0), open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=params)
    return analyst, query


class TestEndToEndAccuracy:
    def test_privacy_pipeline_recovers_distribution_with_enough_clients(self):
        """With 2,000 clients and mild randomization the estimated histogram is
        within a few percent of the exact one — the paper's core utility claim."""
        system = build_system(num_clients=2_000, seed=21)
        params = ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6)
        _, query = submit(system, params)
        system.run_epoch(query.query_id, 0)
        results = system.flush(query.query_id)
        exact = system.exact_bucket_counts(query.query_id)
        estimated = results[0].histogram.estimates()
        assert histogram_accuracy_loss(exact, estimated) < 0.15

    def test_more_clients_improve_utility(self):
        """Figure 4(c): accuracy improves with the number of participating clients."""
        params = ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6)

        def loss_for(num_clients: int, seed: int) -> float:
            system = build_system(num_clients=num_clients, seed=seed)
            _, query = submit(system, params)
            system.run_epoch(query.query_id, 0)
            results = system.flush(query.query_id)
            exact = system.exact_bucket_counts(query.query_id)
            return histogram_accuracy_loss(exact, results[0].histogram.estimates())

        small = sum(loss_for(50, seed) for seed in (1, 2, 3)) / 3
        large = sum(loss_for(1_500, seed) for seed in (1, 2, 3)) / 3
        assert large < small

    def test_three_proxy_deployment_works_end_to_end(self):
        system = build_system(num_clients=300, seed=31, num_proxies=3)
        params = ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5)
        _, query = submit(system, params)
        system.run_epoch(query.query_id, 0)
        results = system.flush(query.query_id)
        exact = system.exact_bucket_counts(query.query_id)
        assert results[0].histogram.estimates() == pytest.approx(exact, abs=1e-6)

    def test_streaming_over_multiple_epochs_produces_one_result_per_window(self):
        system = build_system(num_clients=200, seed=41)
        params = ExecutionParameters(sampling_fraction=0.8, p=0.9, q=0.6)
        analyst, query = submit(system, params)
        system.run_epochs(query.query_id, 5)
        system.flush(query.query_id)
        results = analyst.results_for(query.query_id)
        assert len(results) == 5
        windows = [r.window for r in results]
        assert windows == sorted(windows, key=lambda w: w.start)


class TestPrivacyProperties:
    def test_wire_never_carries_truthful_plaintext(self):
        """No share published to any proxy equals the client's encoded truthful answer."""
        from repro.core.encryption import AnswerCodec
        from repro.core.query import QueryAnswer

        system = build_system(num_clients=100, seed=51)
        params = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.6)
        _, query = submit(system, params)
        system.run_epoch(query.query_id, 0)

        codec = AnswerCodec()
        truthful_messages = set()
        for client in system.clients:
            bits = tuple(client.truthful_answer(query.query_id))
            truthful_messages.add(codec.encode(QueryAnswer(query.query_id, bits, epoch=0)))

        for proxy in system.proxies.proxies:
            for record in proxy.cluster.topic(proxy.topic_name).all_records():
                assert record.value.payload not in truthful_messages

    def test_single_proxy_shares_do_not_decode(self):
        """One proxy's stream alone cannot be decoded into any valid answer."""
        from repro.core.encryption import AnswerCodec

        system = build_system(num_clients=50, seed=61)
        params = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.6)
        _, query = submit(system, params)
        system.run_epoch(query.query_id, 0)
        codec = AnswerCodec()
        proxy = system.proxies.proxies[0]
        decodable = 0
        for record in proxy.cluster.topic(proxy.topic_name).all_records():
            try:
                codec.decode(record.value.payload)
                decodable += 1
            except ValueError:
                pass
        # Decoding requires the magic header to appear by chance; allow a tiny
        # number of accidental matches but not systematic decodability.
        assert decodable <= 1

    def test_epsilon_reported_matches_parameters(self):
        system = build_system(num_clients=50, seed=71)
        params = ExecutionParameters(sampling_fraction=0.6, p=0.6, q=0.6)
        _, query = submit(system, params)
        reported = system.parameters_for(query.query_id).epsilon_zk
        assert reported == pytest.approx(params.epsilon_zk)
