"""Integration tests for the two case studies (Section 7): taxi and electricity."""

import pytest

from repro.analytics import histogram_accuracy_loss
from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    SystemConfig,
)
from repro.datasets import (
    ELECTRICITY_BUCKETS,
    ElectricityGenerator,
    TAXI_DISTANCE_BUCKETS,
    TaxiRideGenerator,
)


def run_taxi_case_study(num_clients: int, params: ExecutionParameters, seed: int = 5):
    system = PrivApproxSystem(SystemConfig(num_clients=num_clients, seed=seed))
    generator = TaxiRideGenerator(seed=seed)
    system.provision_clients(
        TaxiRideGenerator.table_columns(),
        lambda i: generator.rides_for_client(i, num_rides=3),
    )
    analyst = Analyst("taxi-analyst")
    query = analyst.create_query(
        TaxiRideGenerator.case_study_sql(),
        AnswerSpec(buckets=TAXI_DISTANCE_BUCKETS, value_column="distance"),
        frequency_seconds=600.0,
        window_seconds=600.0,
        slide_seconds=600.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=params)
    system.run_epoch(query.query_id, 0)
    results = system.flush(query.query_id)
    exact = system.exact_bucket_counts(query.query_id)
    return system, results[0], exact


class TestTaxiCaseStudy:
    def test_distance_distribution_estimation(self):
        params = ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.3)
        _, result, exact = run_taxi_case_study(1_500, params)
        loss = histogram_accuracy_loss(exact, result.histogram.estimates())
        assert loss < 0.2

    def test_first_bucket_dominates(self):
        """The taxi trace has roughly a third of rides below one mile."""
        params = ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5)
        _, result, exact = run_taxi_case_study(800, params)
        fractions = [count / sum(exact) for count in exact]
        assert fractions[0] == pytest.approx(0.336, abs=0.07)
        assert result.histogram.estimates() == pytest.approx(exact, abs=1e-6)

    def test_higher_p_gives_better_utility(self):
        """Figure 7(a): utility improves as p grows."""
        def loss(p: float) -> float:
            params = ExecutionParameters(sampling_fraction=0.9, p=p, q=0.3)
            _, result, exact = run_taxi_case_study(1_200, params, seed=9)
            return histogram_accuracy_loss(exact, result.histogram.estimates())

        assert loss(0.9) < loss(0.3)


class TestElectricityCaseStudy:
    def test_consumption_distribution_estimation(self):
        system = PrivApproxSystem(SystemConfig(num_clients=1_200, seed=17))
        generator = ElectricityGenerator(seed=17)
        system.provision_clients(
            ElectricityGenerator.table_columns(),
            lambda i: generator.readings_for_client(i, num_readings=2),
        )
        analyst = Analyst("utility-analyst")
        query = analyst.create_query(
            ElectricityGenerator.case_study_sql(),
            AnswerSpec(buckets=ELECTRICITY_BUCKETS, value_column="kwh"),
            frequency_seconds=1800.0,
            window_seconds=1800.0,
            slide_seconds=1800.0,
        )
        params = ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.3)
        system.submit_query(analyst, query, QueryBudget(), parameters=params)
        system.run_epoch(query.query_id, 0)
        results = system.flush(query.query_id)
        exact = system.exact_bucket_counts(query.query_id)
        loss = histogram_accuracy_loss(exact, results[0].histogram.estimates())
        assert loss < 0.2

    def test_low_consumption_buckets_dominate(self):
        generator = ElectricityGenerator(seed=23)
        indices = generator.bucket_indices(5_000)
        assert sum(1 for i in indices if i <= 1) / len(indices) > 0.5
