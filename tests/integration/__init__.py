"""End-to-end integration tests."""
