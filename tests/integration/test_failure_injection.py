"""Failure-injection integration tests: missing shares, malicious clients, storage loss."""

import random

import pytest

from repro.core import (
    Aggregator,
    AnswerSpec,
    ExecutionParameters,
    HistoricalStore,
    RangeBuckets,
)
from repro.core.encryption import AnswerCodec
from repro.core.query import Query, QueryAnswer
from repro.crypto.prng import KeystreamGenerator
from repro.storage import BlockStore


def make_query() -> Query:
    return Query(
        query_id="analyst-00000001",
        sql="SELECT v FROM private_data",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True), value_column="v"
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )


NOISELESS = ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5)


def encrypt(bits, epoch=0):
    codec = AnswerCodec()
    answer = QueryAnswer(query_id="analyst-00000001", bits=tuple(bits), epoch=epoch)
    return list(
        codec.encrypt(answer, num_proxies=2, keystream=KeystreamGenerator(seed=b"f")).shares
    )


class TestMissingShares:
    def test_lost_share_excludes_only_that_answer(self):
        """An answer whose key share is lost never decrypts, but other answers do."""
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=3)
        complete_a = encrypt([1, 0, 0])
        complete_b = encrypt([0, 1, 0])
        dropped = encrypt([0, 0, 1])[:1]  # second share lost in transit
        aggregator.ingest_shares(complete_a + complete_b + dropped, epoch=0)
        result = aggregator.flush()[0]
        assert result.num_answers == 2
        assert aggregator.pending_joins() == 1
        # The two decodable answers scale up by U / U' = 3 / 2.
        assert result.histogram.estimates()[0] == pytest.approx(1.5)
        assert result.histogram.estimates()[1] == pytest.approx(1.5)
        assert result.histogram.estimates()[2] == pytest.approx(0.0)

    def test_late_share_completes_join_in_later_epoch(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=2)
        shares = encrypt([1, 0, 0], epoch=0)
        aggregator.ingest_shares(shares[:1], epoch=0)
        aggregator.ingest_shares(shares[1:], epoch=1)  # arrives one epoch late
        results = aggregator.flush()
        total_answers = sum(r.num_answers for r in results)
        assert total_answers == 1


class TestMaliciousClients:
    def test_garbage_payload_does_not_crash_aggregation(self):
        """A malformed share pair is skipped without poisoning the window."""
        from repro.crypto.xor import MessageShare

        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=2)
        garbage = [
            MessageShare(message_id="evil", payload=b"\x00" * 13, index=0),
            MessageShare(message_id="evil", payload=b"\x00" * 13, index=1),
        ]
        good = encrypt([1, 0, 0])
        aggregator.ingest_shares(garbage + good, epoch=0)
        result = aggregator.flush()[0]
        assert aggregator.malformed_messages == 1
        assert result.num_answers == 1
        assert result.histogram.estimates()[0] == pytest.approx(2.0)  # scaled 2 / 1

    def test_distorting_client_shifts_result_boundedly(self):
        """A single false answer shifts the histogram by exactly one count."""
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=100)
        honest = []
        for _ in range(99):
            honest.extend(encrypt([1, 0, 0]))
        liar = encrypt([0, 0, 1])
        aggregator.ingest_shares(honest + liar, epoch=0)
        result = aggregator.flush()[0]
        assert result.histogram.estimates()[0] == pytest.approx(99.0)
        assert result.histogram.estimates()[2] == pytest.approx(1.0)


class TestStorageFailures:
    def test_historical_answers_survive_storage_node_failure(self):
        store = HistoricalStore(block_store=BlockStore(num_nodes=3, replication=2, block_size=256))
        answers = [
            QueryAnswer(query_id="analyst-00000001", bits=(1, 0, 0), epoch=0) for _ in range(20)
        ]
        store.append_batch(answers, epoch_timestamp=0.0)
        store.block_store.fail_node(1)
        recovered = store.read_answers("analyst-00000001")
        assert len(recovered) == 20

    def test_unreplicated_store_loses_data_on_failure(self):
        from repro.storage import StorageError

        store = HistoricalStore(block_store=BlockStore(num_nodes=2, replication=1, block_size=64))
        answers = [
            QueryAnswer(query_id="analyst-00000001", bits=(1, 0, 0), epoch=0) for _ in range(20)
        ]
        store.append_batch(answers, epoch_timestamp=0.0)
        store.block_store.fail_node(0)
        store.block_store.fail_node(1)
        with pytest.raises(StorageError):
            store.read_answers("analyst-00000001")


class TestChurn:
    def test_result_quality_degrades_gracefully_with_participation(self):
        """Dropping participation (client churn) widens error but never corrupts results."""
        rng = random.Random(3)
        query = make_query()
        estimates = {}
        for fraction in (1.0, 0.3):
            params = ExecutionParameters(sampling_fraction=fraction, p=1.0, q=0.5)
            aggregator = Aggregator(query=query, parameters=params, total_clients=1_000)
            shares = []
            for i in range(1_000):
                if rng.random() > fraction:
                    continue
                bits = [1, 0, 0] if i % 2 == 0 else [0, 1, 0]
                shares.extend(encrypt(bits))
            aggregator.ingest_shares(shares, epoch=0)
            result = aggregator.flush()[0]
            estimates[fraction] = result
        full = estimates[1.0]
        sparse = estimates[0.3]
        # Both recover the 50/50 split approximately; the sparse one has wider bounds.
        assert full.histogram.estimates()[0] == pytest.approx(500.0, rel=0.02)
        assert sparse.histogram.estimates()[0] == pytest.approx(500.0, rel=0.15)
        assert (
            sparse.histogram.bucket(0).error_bound > full.histogram.bucket(0).error_bound
        )
