"""Tests for the scenario sweep layer (repro.runtime.scenario).

Four properties carry the layer:

* **Plan determinism** — the same :class:`ScenarioSpec` expands to the same
  epoch-by-epoch churn/participation/injection plan on every call, and after
  a round trip through its serialized form.  Everything downstream (churn,
  deadlines, injections) inherits determinism from this.
* **Deadline fault injection** — a deliberately slow client population
  (modeled latency above the epoch deadline) is dropped on *every* executor
  without deadlocking, and the outcome records exactly which clients were
  late.
* **Byzantine duplicate accounting** — injected forged answers are admitted
  exactly once each; every extra copy is rejected as a duplicate, with
  counts that are executor-invariant.
* **Hostile edge cases** — empty participation epochs, deadlines below the
  minimum modeled latency, and zero-latency networks neither hang nor skew
  any executor.
"""

from __future__ import annotations

import pytest

from repro.netsim.network import NetworkModel
from repro.runtime.scenario import (
    EpochDeadline,
    ScenarioSpec,
    build_plan,
    client_latency_seconds,
    epoch_deadline_for,
    find_scenario,
    run_scenario,
    scenario_grid,
)

# The five executor configurations the acceptance criteria range over.
ALL_EXECUTOR_CONFIGS = [
    ("serial", False),
    ("sharded", False),
    ("pipelined", False),
    ("process", False),
    ("process", True),
]
CONFIG_IDS = [f"{e}{'-resident' if r else ''}" for e, r in ALL_EXECUTOR_CONFIGS]


def _run(spec, executor, resident):
    return run_scenario(
        spec,
        executor=executor,
        workers=2,
        shards=3,
        resident=resident,
        checkpoint_every=2,
    )


# -- plan determinism ---------------------------------------------------------


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        """Two generations from one spec are identical, field for field."""
        for spec in scenario_grid("full"):
            assert build_plan(spec) == build_plan(spec), spec.name

    def test_plan_survives_spec_round_trip(self):
        """Serializing and re-hydrating the spec changes nothing."""
        for spec in scenario_grid("full"):
            revived = ScenarioSpec.from_dict(spec.to_dict())
            assert revived == spec
            assert build_plan(revived) == build_plan(spec), spec.name

    def test_different_seeds_diverge(self):
        spec = find_scenario("churn-heavy")
        other = ScenarioSpec.from_dict({**spec.to_dict(), "seed": spec.seed + 1})
        assert build_plan(other).epochs != build_plan(spec).epochs

    def test_plan_invariants(self):
        """Rosters are sorted, churn edits are consistent, rows are bounded."""
        for spec in scenario_grid("full"):
            plan = build_plan(spec)
            assert len(plan.rows_per_client) == spec.num_clients
            assert all(
                1 <= rows <= spec.max_rows_per_client for rows in plan.rows_per_client
            )
            previous = set(plan.initial_active)
            for epoch_plan in plan.epochs:
                active = set(epoch_plan.active)
                assert list(epoch_plan.active) == sorted(active)
                assert not set(epoch_plan.joins) & set(epoch_plan.leaves)
                assert set(epoch_plan.joins) <= active
                assert not set(epoch_plan.leaves) & active
                assert active == (previous - set(epoch_plan.leaves)) | set(
                    epoch_plan.joins
                )
                previous = active

    def test_zipf_skews_rows_toward_the_head(self):
        plan = build_plan(find_scenario("zipf-tables"))
        assert plan.rows_per_client[0] == max(plan.rows_per_client)
        assert plan.rows_per_client[-1] == 1

    def test_grid_contract(self):
        """The acceptance grid: >= 12 uniquely named scenarios, smoke subset."""
        full = scenario_grid("full")
        assert len(full) >= 12
        names = [spec.name for spec in full]
        assert len(set(names)) == len(names)
        assert any(s.join_rate > 0 for s in full)
        assert any(s.zipf_exponent > 0 for s in full)
        assert any(s.duplicate_rate > 0 for s in full)
        assert any(s.deadline_seconds is not None for s in full)
        smoke = scenario_grid("smoke")
        assert {s.name for s in smoke} <= set(names)
        with pytest.raises(ValueError):
            scenario_grid("bogus")
        with pytest.raises(KeyError):
            find_scenario("no-such-scenario")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", seed=1, num_clients=0, num_epochs=1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", seed=1, num_clients=4, num_epochs=1, join_rate=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", seed=1, num_clients=4, num_epochs=1, deadline_seconds=-1.0
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", seed=1, num_clients=4, num_epochs=1, duplicate_copies=0
            )


# -- the deadline gate --------------------------------------------------------


class _FakeResponse:
    def __init__(self, client_id, query_id):
        self.client_id = client_id
        self.query_id = query_id


class TestEpochDeadline:
    def test_gate_decides_from_the_latency_map(self):
        gate = EpochDeadline(0, 0.5, {"a": 0.1, "b": 0.9})
        assert not gate.is_late("a")
        assert gate.is_late("b")
        assert gate.is_late("unknown") is False  # unmodeled clients pass

    def test_should_drop_records_per_query(self):
        gate = EpochDeadline(0, 0.5, {"a": 0.1, "b": 0.9, "c": 2.0})
        assert not gate.should_drop(_FakeResponse("a", "q1"))
        assert gate.should_drop(_FakeResponse("c", "q1"))
        assert gate.should_drop(_FakeResponse("b", "q1"))
        assert gate.should_drop(_FakeResponse("b", "q2"))
        assert gate.drops_for("q1") == ("b", "c")  # sorted, order-canonical
        assert gate.drops_for("q2") == ("b",)
        assert gate.drops_for("q3") == ()
        assert gate.total_dropped() == 3

    def test_modeled_latency_is_deterministic(self):
        spec = find_scenario("deadline-tight")
        plan = build_plan(spec)
        network = NetworkModel(bandwidth_bytes_per_sec=spec.bandwidth_bytes_per_sec)
        for index in range(spec.num_clients):
            first = client_latency_seconds(plan, index, 1, network)
            assert first == client_latency_seconds(plan, index, 1, network)
            assert first > 0.0

    def test_no_deadline_means_no_gate(self):
        plan = build_plan(find_scenario("steady-state"))
        assert epoch_deadline_for(plan, 0) is None


# -- deadline fault injection across every executor ---------------------------

# Full participation (sampling_fraction=1.0) makes the late set exact: every
# active client answers, so the drop ledger must equal the model's late set —
# not merely be contained in it.
SLOW_SPEC = ScenarioSpec(
    name="test-slow-clients",
    seed=4242,
    num_clients=18,
    num_epochs=2,
    initial_active_fraction=1.0,
    max_rows_per_client=4,
    deadline_seconds=0.002,
    sampling_fraction=1.0,
    p=0.9,
    q=0.5,
)


def _expected_late(spec) -> dict[int, tuple[str, ...]]:
    plan = build_plan(spec)
    network = NetworkModel(bandwidth_bytes_per_sec=spec.bandwidth_bytes_per_sec)
    return {
        epoch_plan.epoch: tuple(
            sorted(
                f"client-{index:06d}"
                for index in epoch_plan.active
                if client_latency_seconds(plan, index, epoch_plan.epoch, network)
                > spec.deadline_seconds
            )
        )
        for epoch_plan in plan.epochs
    }


class TestDeadlineFaultInjection:
    def test_slow_spec_is_discriminating(self):
        """Some clients are late and some are not, so the test means something."""
        expected = _expected_late(SLOW_SPEC)
        for epoch, late in expected.items():
            assert 0 < len(late) < SLOW_SPEC.num_clients, (epoch, late)

    @pytest.mark.parametrize("executor,resident", ALL_EXECUTOR_CONFIGS, ids=CONFIG_IDS)
    def test_slow_clients_dropped_and_recorded(self, executor, resident):
        """Every executor drops exactly the modeled-late clients, no deadlock."""
        expected = _expected_late(SLOW_SPEC)
        run = _run(SLOW_SPEC, executor, resident)
        assert len(run.epochs) == SLOW_SPEC.num_epochs  # completed, didn't hang
        for stats in run.epochs:
            assert stats.late_clients == expected[stats.epoch]
            # Active and answering at s=1.0, minus the late: nobody vanished.
            assert stats.responses == stats.active_clients - len(stats.late_clients)

    def test_deadline_run_digest_is_executor_invariant(self):
        digests = {
            f"{e}{'-r' if r else ''}": _run(SLOW_SPEC, e, r).digest
            for e, r in ALL_EXECUTOR_CONFIGS
        }
        assert len(set(digests.values())) == 1, digests


# -- byzantine duplicate injection -------------------------------------------


class TestDuplicateInjection:
    @pytest.mark.parametrize(
        "executor,resident",
        [("serial", False), ("pipelined", False), ("process", True)],
        ids=["serial", "pipelined", "process-resident"],
    )
    def test_copies_rejected_exactly_once_admitted(self, executor, resident):
        spec = find_scenario("byzantine-dupes")
        plan = build_plan(spec)
        run = _run(spec, executor, resident)
        for stats, epoch_plan in zip(run.epochs, plan.epochs):
            injections = len(epoch_plan.injections)
            assert injections > 0  # the scenario actually injects
            # Each injection sends `copies` identically-tokened answers per
            # query: one is admitted, the rest bounce off admission control.
            expected_rejected = injections * (spec.duplicate_copies - 1) * spec.num_queries
            assert stats.duplicates_rejected == expected_rejected
            assert stats.answers_admitted == stats.responses + injections * spec.num_queries
            assert stats.invalid_answers == 0  # forged answers are well-formed

    def test_injection_is_executor_invariant(self):
        spec = find_scenario("byzantine-churn")
        digests = {
            f"{e}{'-r' if r else ''}": _run(spec, e, r).digest
            for e, r in ALL_EXECUTOR_CONFIGS
        }
        assert len(set(digests.values())) == 1, digests


# -- hostile edge cases -------------------------------------------------------


class TestHostileEdgeCases:
    @pytest.mark.parametrize("executor,resident", ALL_EXECUTOR_CONFIGS, ids=CONFIG_IDS)
    def test_empty_participation_epoch(self, executor, resident):
        """Zero active clients: epochs complete with no answers and no hang."""
        spec = find_scenario("ghost-town")
        run = _run(spec, executor, resident)
        assert all(stats.active_clients == 0 for stats in run.epochs)
        assert all(stats.responses == 0 for stats in run.epochs)
        assert run.mean_accuracy_loss is None

    def test_deadline_below_minimum_latency_drops_everyone(self):
        """A deadline no modeled client can meet empties every epoch."""
        spec = find_scenario("deadline-slow-net")
        plan = build_plan(spec)
        network = NetworkModel(bandwidth_bytes_per_sec=spec.bandwidth_bytes_per_sec)
        minimum = min(
            client_latency_seconds(plan, index, 0, network)
            for index in range(spec.num_clients)
        )
        assert spec.deadline_seconds < minimum
        for executor, resident in (("serial", False), ("process", True)):
            run = _run(spec, executor, resident)
            # Every produced answer was dropped (the sampling coin keeps some
            # clients silent, so the drop ledger tracks participants, not the
            # whole roster) and nothing was delivered.
            assert all(stats.responses == 0 for stats in run.epochs)
            assert all(
                0 < len(stats.late_clients) <= stats.active_clients
                for stats in run.epochs
            )

    def test_zero_latency_network_never_drops(self):
        """An effectively zero-latency network with no jitter misses nothing."""
        spec = ScenarioSpec(
            name="test-fast-net",
            seed=77,
            num_clients=10,
            num_epochs=1,
            deadline_seconds=10.0,
            jitter_seconds=0.0,
            bandwidth_bytes_per_sec=1e15,
            p=0.9,
            q=0.5,
        )
        run = _run(spec, "serial", False)
        assert run.total_late_dropped == 0

    def test_churned_out_clients_are_absent_from_ground_truth(self):
        """The population rescale and exact counts track the live roster."""
        spec = find_scenario("mass-exodus")
        plan = build_plan(spec)
        run = _run(spec, "serial", False)
        sizes = [len(epoch_plan.active) for epoch_plan in plan.epochs]
        assert sizes == sorted(sizes, reverse=True) and sizes[-1] < sizes[0]
        for stats, expected in zip(run.epochs, sizes):
            assert stats.active_clients == expected
            assert stats.responses <= expected
