"""Edge cases and failure handling of the pipelined epoch executor.

The equivalence suite (`test_executor_equivalence.py`) pins the pipelined
executor to the serial reference on ordinary populations; this module covers
the boundaries — an empty client population, fewer clients than shards, one
shard — and the failure contract: an exception in any pipeline stage must
surface from ``run_epoch`` instead of deadlocking the queues.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.core.aggregator import Aggregator
from repro.core.client import Client, ClientConfig
from repro.core.proxy import ProxyNetwork
from repro.runtime import (
    EpochContext,
    PipelinedExecutor,
    SerialExecutor,
    make_executor,
)

PARAMS = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5)


def make_context(num_clients: int) -> EpochContext:
    """A minimal epoch context wired by hand (no PrivApproxSystem).

    Lets the tests exercise populations PrivApproxSystem refuses (0 clients).
    """
    proxies = ProxyNetwork(num_proxies=2)
    analyst = Analyst("pipeline-edge")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    clients = []
    for index in range(num_clients):
        client = Client(
            ClientConfig(client_id=f"edge-{index:03d}", num_proxies=2, seed=1000 + index)
        )
        client.create_table([("value", "REAL")])
        client.ingest([{"value": float(index % 8)}])
        client.subscribe(query, PARAMS)
        clients.append(client)
    aggregator = Aggregator(
        query=query,
        parameters=PARAMS,
        total_clients=max(1, num_clients),
        num_proxies=2,
    )
    return EpochContext(
        clients=clients,
        proxies=proxies,
        aggregator=aggregator,
        consumers=proxies.make_consumers(group_id="pipeline-edge"),
        query_id=query.query_id,
    )


def make_system(num_clients: int = 24, shards: int | None = None) -> tuple:
    config = SystemConfig(
        num_clients=num_clients,
        seed=99,
        executor="pipelined",
        executor_workers=2,
        executor_shards=shards,
    )
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("pipeline-edge")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
    return system, query.query_id


class TestPopulationEdges:
    def test_zero_clients(self):
        """An empty population completes the epoch and produces nothing."""
        executor = PipelinedExecutor(num_workers=2, num_shards=4)
        try:
            outcome = executor.run_epoch(make_context(0), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 0
        assert outcome.window_results == ()

    def test_zero_clients_matches_serial(self):
        serial = SerialExecutor()
        pipelined = PipelinedExecutor(num_workers=2, num_shards=3)
        try:
            serial_outcome = serial.run_epoch(make_context(0), epoch=0)
            pipelined_outcome = pipelined.run_epoch(make_context(0), epoch=0)
        finally:
            serial.close()
            pipelined.close()
        assert serial_outcome.responses == pipelined_outcome.responses == ()
        assert serial_outcome.window_results == pipelined_outcome.window_results == ()

    def test_fewer_clients_than_shards(self):
        """Trailing empty shards are simply skipped."""
        executor = PipelinedExecutor(num_workers=2, num_shards=8)
        try:
            outcome = executor.run_epoch(make_context(3), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 3  # s = 1.0: everyone participates
        assert [r.client_id for r in outcome.responses] == [
            "edge-000",
            "edge-001",
            "edge-002",
        ]

    def test_single_shard(self):
        """One shard degenerates to serial answering but still pipelines."""
        executor = PipelinedExecutor(num_workers=2, num_shards=1)
        try:
            outcome = executor.run_epoch(make_context(5), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 5
        assert [r.client_id for r in outcome.responses] == [
            f"edge-{i:03d}" for i in range(5)
        ]


class TestFailureSurfacing:
    def test_worker_exception_surfaces(self):
        """A client that blows up mid-answer fails the epoch, promptly."""
        system, query_id = make_system(num_clients=24, shards=4)

        def explode(*args, **kwargs):
            raise RuntimeError("client device on fire")

        system.clients[13].answer_query = explode
        with pytest.raises(RuntimeError, match="client device on fire"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_transmit_exception_surfaces(self):
        system, query_id = make_system(num_clients=12, shards=3)

        def explode(*args, **kwargs):
            raise RuntimeError("proxy link down")

        system.proxies.transmit_shard = explode
        with pytest.raises(RuntimeError, match="proxy link down"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_ingest_exception_surfaces(self):
        system, query_id = make_system(num_clients=12, shards=3)
        aggregator = system.aggregator_for(query_id)

        def explode(*args, **kwargs):
            raise RuntimeError("aggregator out of memory")

        aggregator.ingest_shares = explode
        with pytest.raises(RuntimeError, match="aggregator out of memory"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_failed_epoch_leaves_no_stale_records(self):
        """Shards published but never ingested must not leak into epoch t+1.

        An ingest failure on the first shard leaves the later shards'
        batch records sitting in the shard-topic consumers; without the
        failure-path drain they would be polled at the next epoch and
        ingested with the wrong epoch number.
        """
        system, query_id = make_system(num_clients=12, shards=3)
        aggregator = system.aggregator_for(query_id)
        original = aggregator.ingest_shares
        calls = {"count": 0}

        def fail_once(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient ingest fault")
            return original(*args, **kwargs)

        aggregator.ingest_shares = fail_once
        with pytest.raises(RuntimeError, match="transient ingest fault"):
            system.run_epoch(query_id, 0)
        aggregator.ingest_shares = original
        before = aggregator.shares_received
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 12
        # Only epoch 1's own shares arrive: 12 participants x 2 proxies.
        assert aggregator.shares_received - before == 12 * 2
        system.close()

    def test_executor_survives_for_the_next_epoch(self):
        """After a failed epoch the pool is intact and can run again."""
        system, query_id = make_system(num_clients=12, shards=3)
        original = system.clients[5].answer_query

        def explode(*args, **kwargs):
            raise RuntimeError("transient fault")

        system.clients[5].answer_query = explode
        with pytest.raises(RuntimeError, match="transient fault"):
            system.run_epoch(query_id, 0)
        system.clients[5].answer_query = original
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 12
        system.close()


class TestExecutorReuse:
    def test_reuse_across_deployments_rebinds_consumers(self):
        """Query ids are deterministic, so a reused executor must notice a
        new proxy network instead of polling the old deployment's brokers."""
        executor = PipelinedExecutor(num_workers=2, num_shards=2)
        try:
            context_a = make_context(6)
            executor.run_epoch(context_a, epoch=0)
            context_b = make_context(6)  # same query id, fresh brokers
            outcome = executor.run_epoch(context_b, epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 6
        # The second deployment's aggregator really received the shares.
        assert context_b.aggregator.shares_received == 6 * 2


class TestConfiguration:
    def test_process_pool_rejected_by_factory(self):
        with pytest.raises(ValueError, match="thread"):
            make_executor("pipelined", pool="process")

    def test_process_pool_rejected_by_system_config(self):
        with pytest.raises(ValueError, match="thread"):
            SystemConfig(num_clients=4, executor="pipelined", executor_pool="process")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PipelinedExecutor(num_workers=0)
        with pytest.raises(ValueError):
            PipelinedExecutor(num_workers=2, num_shards=0)
        with pytest.raises(ValueError):
            PipelinedExecutor(num_workers=2, queue_depth=0)

    def test_close_is_idempotent(self):
        executor = PipelinedExecutor(num_workers=2)
        executor.run_epoch(make_context(4), epoch=0)
        executor.close()
        executor.close()
