"""Tests for repro.runtime (epoch executors)."""
