"""Executor torture suite: seeded random scenarios vs the serial reference.

The hand-enumerated equivalence cases pin specific configurations; this
module generalizes them into a property-style harness.  A fixed scenario
seed generates ~25 random deployments — client count, shard/worker counts,
1–3 concurrent queries, 1–4 epochs, executor kind, residency on/off with
random checkpoint cadence, sparse or full participation, and (for the
process executors) a forced mid-run re-shard — and each must produce
byte-identical per-query responses and window results to the serial
executor running the very same deployment.

The scenario list is deterministic (same seed → same 25 scenarios → stable
test ids), so a failure reproduces with ``-k torture-NN`` and a new
executor configuration knob only needs to be added to the generator to be
dragged through the whole space.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)

SCENARIO_SEED = 0x7A57E5
NUM_SCENARIOS = 25
DATA_SEED = 20260727


@dataclass(frozen=True)
class Scenario:
    """One randomly drawn deployment configuration."""

    index: int
    executor: str
    resident: bool
    num_clients: int
    num_shards: int
    num_workers: int
    num_queries: int
    num_epochs: int
    sampling_fraction: float
    checkpoint_every: int
    reshard_after_epoch: int | None
    rows_per_client: int

    @property
    def test_id(self) -> str:
        resident = "-resident" if self.resident else ""
        reshard = "-reshard" if self.reshard_after_epoch is not None else ""
        return (
            f"torture-{self.index:02d}-{self.executor}{resident}{reshard}"
            f"-c{self.num_clients}-s{self.num_shards}-q{self.num_queries}"
            f"-e{self.num_epochs}"
        )


def generate_scenarios() -> list[Scenario]:
    """~25 deterministic scenarios with guaranteed executor coverage."""
    rng = random.Random(SCENARIO_SEED)
    # Thread executors are cheap, so they carry the bulk of the fuzzing;
    # every process/resident scenario costs a worker spawn.
    executor_pool = (
        ["sharded"] * 8
        + ["pipelined"] * 7
        + [("process", False)] * 4
        + [("process", True)] * 6
    )
    rng.shuffle(executor_pool)
    scenarios = []
    for index, choice in enumerate(executor_pool[:NUM_SCENARIOS]):
        executor, resident = choice if isinstance(choice, tuple) else (choice, False)
        num_epochs = rng.randint(1, 4)
        reshard_after_epoch = None
        if executor == "process" and num_epochs >= 3 and rng.random() < 0.6:
            reshard_after_epoch = rng.randint(1, num_epochs - 2)
        scenarios.append(
            Scenario(
                index=index,
                executor=executor,
                resident=resident,
                num_clients=rng.randint(1, 24),
                num_shards=rng.randint(1, 7),
                num_workers=rng.randint(1, 4),
                num_queries=rng.randint(1, 3),
                num_epochs=num_epochs,
                sampling_fraction=rng.choice([0.05, 0.3, 0.8, 1.0]),
                checkpoint_every=rng.choice([0, 1, 2, 3]),
                reshard_after_epoch=reshard_after_epoch,
                rows_per_client=rng.randint(1, 3),
            )
        )
    return scenarios


SCENARIOS = generate_scenarios()


def serialize_results(results) -> bytes:
    out = bytearray()
    for result in results:
        out += struct.pack(
            ">ddqq",
            result.window.start,
            result.window.end,
            result.num_answers,
            result.population,
        )
        for bucket in result.histogram.buckets:
            out += struct.pack(
                ">qdd", bucket.bucket_index, bucket.estimate, bucket.error_bound
            )
    return bytes(out)


def serialize_responses(responses) -> list[tuple]:
    return [
        (
            r.client_id,
            r.epoch,
            r.truthful_bits,
            r.randomized_bits,
            tuple(share.payload for share in r.encrypted.shares),
        )
        for r in responses
    ]


def run_scenario(scenario: Scenario, as_serial: bool) -> dict:
    """Run one scenario end-to-end; return per-query serialized outputs."""
    config = SystemConfig(
        num_clients=scenario.num_clients,
        num_proxies=2,
        seed=DATA_SEED + scenario.index,
        executor="serial" if as_serial else scenario.executor,
        executor_workers=scenario.num_workers,
        executor_shards=None if as_serial else scenario.num_shards,
        executor_resident=False if as_serial else scenario.resident,
        executor_checkpoint_every=scenario.checkpoint_every,
    )
    system = PrivApproxSystem(config)
    data_rng = random.Random(DATA_SEED + scenario.index)
    system.provision_clients(
        [("value", "REAL")],
        lambda i: [
            {"value": data_rng.uniform(0.0, 8.0)}
            for _ in range(scenario.rows_per_client)
        ],
    )
    analyst = Analyst(f"torture-{scenario.index}")
    query_ids = []
    for query_index in range(scenario.num_queries):
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(
                    0.0, 8.0, 3 + query_index, open_ended=True
                ),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(
                sampling_fraction=scenario.sampling_fraction, p=0.9, q=0.5
            ),
        )
        query_ids.append(query.query_id)
    for epoch in range(scenario.num_epochs):
        if scenario.num_queries == 1:
            system.run_epoch(query_ids[0], epoch)
        else:
            system.run_epoch_all(epoch)
        if not as_serial and scenario.reshard_after_epoch == epoch:
            # Force a mid-run re-shard: a spreadable heavy skew the adaptive
            # sizer cannot ignore.  Boundary moves must be result-invisible
            # (and, under residency, must migrate exactly the moved shards).
            skew_rng = random.Random(scenario.index)
            heavy = max(1, scenario.num_clients // 3)
            costs = [6.0] * heavy + [
                0.1 + 0.01 * skew_rng.random()
                for _ in range(scenario.num_clients - heavy)
            ]
            system.executor._sizer.prime(costs)
    outputs = {}
    for query_id in query_ids:
        system.flush(query_id)
        outputs[query_id] = (
            serialize_responses(system.responses_log(query_id)),
            serialize_results(analyst.results_for(query_id)),
        )
    system.close()
    return outputs


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[scenario.test_id for scenario in SCENARIOS]
)
def test_scenario_matches_serial_reference(scenario: Scenario):
    serial = run_scenario(scenario, as_serial=True)
    parallel = run_scenario(scenario, as_serial=False)
    assert parallel.keys() == serial.keys()
    for query_id in serial:
        assert parallel[query_id][0] == serial[query_id][0], (
            f"{scenario.test_id}: response log diverged for query {query_id}"
        )
        assert parallel[query_id][1] == serial[query_id][1], (
            f"{scenario.test_id}: window results diverged for query {query_id}"
        )


def test_scenario_generation_is_deterministic():
    """Same seed, same scenarios — failures must reproduce by id."""
    assert generate_scenarios() == SCENARIOS
    assert len(SCENARIOS) == NUM_SCENARIOS
    executors_covered = {(s.executor, s.resident) for s in SCENARIOS}
    assert ("sharded", False) in executors_covered
    assert ("pipelined", False) in executors_covered
    assert ("process", False) in executors_covered
    assert ("process", True) in executors_covered
    assert any(s.reshard_after_epoch is not None for s in SCENARIOS)
    assert any(s.num_queries > 1 for s in SCENARIOS)


# -- churn torture: the hostile-environment grid vs. the serial reference -----
#
# The scenarios above fuzz executor *configuration* over a well-behaved
# population.  These drag every executor through hostile *environments* from
# the seeded grid of repro.runtime.scenario — per-epoch join/leave churn,
# Zipf skew, byzantine duplicate injection, epoch deadlines — and demand the
# same byte-identity with the serial reference (compared via the run digest,
# which covers the response log, window results and late-drop ledger).

from repro.runtime.scenario import run_scenario as run_env_scenario  # noqa: E402
from repro.runtime.scenario import scenario_grid  # noqa: E402

CHURN_SCENARIO_NAMES = ("churn-mild", "churn-heavy", "zipf-churn", "kitchen-sink")
CHURN_SPECS = [
    spec for spec in scenario_grid("full") if spec.name in CHURN_SCENARIO_NAMES
]
CHURN_EXECUTOR_CONFIGS = [
    ("sharded", False),
    ("pipelined", False),
    ("process", False),
    ("process", True),
    # Canonical driver-combo spellings of the staged engine: the cheap
    # single-thread config and the barrier thread pool, dragged through the
    # same hostile environments as the legacy names.
    ("inline/in-process", False),
    ("thread-pool/in-process", False),
]

_serial_digests: dict[str, str] = {}


def _serial_churn_digest(spec) -> str:
    digest = _serial_digests.get(spec.name)
    if digest is None:
        digest = _serial_digests[spec.name] = run_env_scenario(
            spec, executor="serial"
        ).digest
    return digest


@pytest.mark.parametrize(
    "executor,resident",
    CHURN_EXECUTOR_CONFIGS,
    ids=[f"{e}{'-resident' if r else ''}" for e, r in CHURN_EXECUTOR_CONFIGS],
)
@pytest.mark.parametrize("spec", CHURN_SPECS, ids=[s.name for s in CHURN_SPECS])
def test_churn_scenario_matches_serial_reference(spec, executor, resident):
    """Seeded join/leave churn between epochs is executor-invariant."""
    assert spec.join_rate > 0 and spec.leave_rate > 0  # really a churn scenario
    run = run_env_scenario(
        spec,
        executor=executor,
        workers=2,
        shards=3,
        resident=resident,
        checkpoint_every=2,
    )
    assert run.digest == _serial_churn_digest(spec), (
        f"{spec.name} on {run.executor_label} diverged from the serial reference"
    )


# -- indexed answer path: scan reference vs compiled columnar -----------------
#
# The sqldb differential fuzzer proves compiled == scan per query; this
# drags one full hostile scenario (churn + skew + injections + deadlines)
# over the compiled columnar answer path on every executor configuration
# and demands the run digest match serial + SQLDB_FORCE_SCAN — the whole
# pipeline, not just the SELECT, must be unable to tell the paths apart.

INDEXED_PATH_CONFIGS = [
    ("serial", False),
    ("sharded", False),
    ("pipelined", False),
    ("process", False),
    ("process", True),
    ("inline/in-process", False),
]


@pytest.mark.parametrize(
    "mode", ["arena", "per-client"], ids=["arena", "per-client"]
)
@pytest.mark.parametrize(
    "executor,resident",
    INDEXED_PATH_CONFIGS,
    ids=[f"{e}{'-resident' if r else ''}" for e, r in INDEXED_PATH_CONFIGS],
)
def test_indexed_answer_path_matches_scan_reference(
    executor, resident, mode, monkeypatch
):
    """The full differential ladder over one hostile scenario: shard-wide
    arena answering (the default) and the per-client compiled path
    (``SQLDB_FORCE_PER_CLIENT=1``) must both match serial + forced row scan
    digest-for-digest — the whole pipeline, not just the SELECT, must be
    unable to tell the three paths apart."""
    spec = next(s for s in scenario_grid("full") if s.name == "kitchen-sink")
    monkeypatch.setenv("SQLDB_FORCE_SCAN", "1")
    reference_digest = run_env_scenario(spec, executor="serial").digest
    monkeypatch.setenv("SQLDB_FORCE_SCAN", "0")
    monkeypatch.setenv(
        "SQLDB_FORCE_PER_CLIENT", "1" if mode == "per-client" else "0"
    )
    run = run_env_scenario(
        spec,
        executor=executor,
        workers=2,
        shards=3,
        resident=resident,
        checkpoint_every=2,
    )
    assert run.digest == reference_digest, (
        f"{mode} path on {run.executor_label} diverged from serial+scan"
    )


# -- shard-arena maintenance under churn and ShardDelta traffic ---------------
#
# The resident answer path now probes a shard-wide arena; these pin that the
# torture traffic the resident runtime actually generates — subscription
# churn and ShardDelta row appends — syncs the arena incrementally and never
# triggers a spurious rebuild (a rebuild per epoch would silently erase the
# one-probe-per-shard win while every digest still matched).

from repro.core.client import Client, ClientConfig  # noqa: E402
from repro.runtime.affinity import ResidentShardCache  # noqa: E402
from repro.runtime.engine import answer_shard  # noqa: E402
from repro.runtime.wire import ClientDelta  # noqa: E402


def _arena_clients(count: int = 6) -> tuple[list[Client], str]:
    analyst = Analyst("arena-torture")
    query = analyst.create_query(
        "SELECT value FROM private_data WHERE value >= 2.0",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    params = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5)
    rng = random.Random(DATA_SEED)
    clients = []
    for index in range(count):
        client = Client(
            ClientConfig(client_id=f"arena-{index:02d}", num_proxies=2, seed=900 + index)
        )
        client.create_table([("value", "REAL")])
        client.ingest([{"value": rng.uniform(0.0, 8.0)} for _ in range(4)])
        client.subscribe(query, params)
        clients.append(client)
    return clients, query.query_id


def test_shard_delta_traffic_never_rebuilds_the_arena():
    """Bootstrap once, then epochs of ShardDelta row appends: the resident
    arena must sync in place — rebuild count pinned at the initial build."""
    clients, query_id = _arena_clients()
    cache = ResidentShardCache()
    cache.install(0, clients)
    arena = cache.arena_for(0)
    assert arena is not None
    answer_shard(clients, [query_id], 0, arena=arena)
    stats = arena.arena_stats()["private_data"]
    assert stats["rebuilds"] == 1
    appended_before = stats["appended_rows"]
    columns = (("value", "REAL"),)
    for epoch in range(1, 6):
        # The exact traffic serve_resident_frame applies for a ShardDelta.
        for client in clients[:: 1 + epoch % 2]:
            delta = ClientDelta(
                append_rows=((("private_data", columns, ((float(epoch),),))),)
            )
            client.apply_delta(delta)
            client.database.sync_columnar()
        assert cache.arena_for(0) is arena  # same membership, same arena
        answer_shard(clients, [query_id], epoch, arena=arena)
        stats = arena.arena_stats()["private_data"]
        assert stats["rebuilds"] == 1, f"spurious arena rebuild at epoch {epoch}"
    assert stats["appended_rows"] > appended_before
    assert stats["span_rows"] == sum(
        client.local_row_count() for client in clients
    )


def test_subscription_churn_keeps_the_resident_arena():
    """set_active_clients-style churn is subscription-only: client and
    database objects survive, so the arena must survive with them."""
    clients, query_id = _arena_clients()
    cache = ResidentShardCache()
    cache.install(0, clients)
    arena = cache.arena_for(0)
    for epoch in range(4):
        # Flip half the shard out and back in, as churn scenarios do.
        for client in clients[epoch % 2 :: 2]:
            subscription = client.subscriptions.get(query_id)
            if subscription is not None:
                client.unsubscribe(query_id)
            # Re-subscribe the others that were flipped out last epoch.
        answer_shard(clients, [query_id], epoch, arena=cache.arena_for(0))
        assert cache.arena_for(0) is arena
    assert arena.arena_stats()["private_data"]["rebuilds"] == 1


def test_rebootstrap_replaces_the_arena_with_the_clients():
    """A re-bootstrap installs new client objects; identity-based matching
    must drop the stale arena instead of answering from dead databases."""
    clients, query_id = _arena_clients(count=3)
    cache = ResidentShardCache()
    cache.install(0, clients)
    stale = cache.arena_for(0)
    replacements = [
        Client.from_state(client.export_state()) for client in clients
    ]
    cache.install(0, replacements)
    fresh = cache.arena_for(0)
    assert fresh is not stale
    assert fresh.matches([client.database for client in replacements])
    answer_shard(replacements, [query_id], 1, arena=fresh)
