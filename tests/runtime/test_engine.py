"""The staged epoch engine: registry, driver configs, shims, stage metrics.

PR 9 collapsed the executor zoo into one :class:`StagedEpochEngine` whose
behavior is chosen by a (scheduling, transport) driver combination.  These
tests pin the refactor's contracts:

* the driver registry validates combinations and explains rejections;
* every legacy executor name resolves to the documented driver config, and
  the legacy classes remain importable/constructible as deprecation shims;
* the engine emits one :class:`StageMetrics` per epoch — stage wall-clock,
  wire bytes, deadline late-drops — replacing the per-executor ledgers;
* the previously *inexpressible* combination ``pipelined-overlap`` ×
  ``sealed-tcp-remote`` (stateless snapshot shipping over the sealed TCP
  transport) satisfies the seeded-equivalence contract against serial.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.runtime import (
    DRIVER_COMBOS,
    DRIVER_SPELLINGS,
    EXECUTOR_KINDS,
    LEGACY_EXECUTOR_ALIASES,
    SCHEDULING_KINDS,
    TRANSPORT_KINDS,
    PipelinedExecutor,
    ProcessPoolEpochExecutor,
    RemoteResidentExecutor,
    RemoteWorkerServer,
    ResidentProcessExecutor,
    ShardedExecutor,
    StageMetrics,
    StagedEpochEngine,
    cli_smoke_matrix,
    make_executor,
    run_scenario,
    validate_driver_combo,
)
from repro.runtime.scenario import ScenarioSpec

SEED = 20260808
KEY = bytes.fromhex("cc" * 32)


# -- registry ----------------------------------------------------------------


class TestDriverRegistry:
    def test_every_registered_combo_validates(self):
        for scheduling, transport in DRIVER_COMBOS:
            assert validate_driver_combo(scheduling, transport) == (
                scheduling,
                transport,
            )

    def test_unknown_scheduling_axis_is_named(self):
        with pytest.raises(ValueError, match="unknown scheduling kind 'fiber'"):
            validate_driver_combo("fiber", "in-process")

    def test_unknown_transport_axis_is_named(self):
        with pytest.raises(ValueError, match="unknown transport kind 'carrier-pigeon'"):
            validate_driver_combo("thread-pool", "carrier-pigeon")

    @pytest.mark.parametrize(
        "scheduling,transport",
        [
            ("inline", "framed-wire-local"),
            ("inline", "sealed-tcp-remote"),
            ("thread-pool", "sealed-tcp-remote"),
            ("pinned-worker", "in-process"),
        ],
    )
    def test_rejected_combos_explain_why(self, scheduling, transport):
        """Every axis-valid but unregistered combo fails with a reason."""
        with pytest.raises(ValueError, match="is not available: ") as excinfo:
            validate_driver_combo(scheduling, transport)
        # The reason is prose, not the generic fallback.
        assert "no registered driver" not in str(excinfo.value)

    def test_registry_is_exhaustive_over_both_axes(self):
        """Every (scheduling, transport) pair is either registered or has a
        recorded rejection — no combination falls through silently."""
        for scheduling in SCHEDULING_KINDS:
            for transport in TRANSPORT_KINDS:
                if (scheduling, transport) in DRIVER_COMBOS:
                    validate_driver_combo(scheduling, transport)
                else:
                    with pytest.raises(ValueError, match="is not available"):
                        validate_driver_combo(scheduling, transport)

    def test_spellings_cover_canonical_forms_and_aliases(self):
        for scheduling, transport in DRIVER_COMBOS:
            assert DRIVER_SPELLINGS[f"{scheduling}/{transport}"] == (
                scheduling,
                transport,
            )
        for alias, combo in LEGACY_EXECUTOR_ALIASES.items():
            assert DRIVER_SPELLINGS[alias] == combo
            assert combo in DRIVER_COMBOS
        assert "serial" not in DRIVER_SPELLINGS  # the frozen reference

    def test_executor_kinds_lists_legacy_then_canonical(self):
        assert EXECUTOR_KINDS[:4] == ("serial", "sharded", "pipelined", "process")
        assert set(EXECUTOR_KINDS[4:]) == {
            f"{s}/{t}" for s, t in DRIVER_COMBOS
        }

    def test_smoke_matrix_is_single_host_only(self):
        matrix = cli_smoke_matrix()
        assert matrix[0] == "serial"
        assert all(name in EXECUTOR_KINDS for name in matrix)
        assert not any("sealed-tcp-remote" in name for name in matrix)
        # Every locally runnable combo is covered.
        assert len(matrix) == 1 + sum(
            1 for _, t in DRIVER_COMBOS if t != "sealed-tcp-remote"
        )


# -- make_executor driver mapping -------------------------------------------


class TestMakeExecutorDriverMapping:
    @pytest.mark.parametrize(
        "name,expected_type,scheduling,transport",
        [
            ("sharded", ShardedExecutor, "thread-pool", "in-process"),
            ("pipelined", PipelinedExecutor, "pipelined-overlap", "in-process"),
            (
                "process",
                ProcessPoolEpochExecutor,
                "pipelined-overlap",
                "framed-wire-local",
            ),
            ("inline/in-process", StagedEpochEngine, "inline", "in-process"),
            ("thread-pool/in-process", ShardedExecutor, "thread-pool", "in-process"),
            (
                "thread-pool/framed-wire-local",
                ShardedExecutor,
                "thread-pool",
                "framed-wire-local",
            ),
            (
                "pipelined-overlap/in-process",
                PipelinedExecutor,
                "pipelined-overlap",
                "in-process",
            ),
            (
                "pipelined-overlap/framed-wire-local",
                ProcessPoolEpochExecutor,
                "pipelined-overlap",
                "framed-wire-local",
            ),
            (
                "pinned-worker/framed-wire-local",
                ResidentProcessExecutor,
                "pinned-worker",
                "framed-wire-local",
            ),
        ],
    )
    def test_names_resolve_to_engine_driver_configs(
        self, name, expected_type, scheduling, transport
    ):
        executor = make_executor(name, workers=2, shards=3)
        try:
            assert isinstance(executor, expected_type)
            assert isinstance(executor, StagedEpochEngine)
            assert executor.scheduling == scheduling
            assert executor.transport == transport
        finally:
            executor.close()

    def test_serial_stays_engine_free(self):
        executor = make_executor("serial")
        assert not isinstance(executor, StagedEpochEngine)

    def test_resident_flag_upgrades_process(self):
        executor = make_executor("process", workers=2, resident=True)
        try:
            assert isinstance(executor, ResidentProcessExecutor)
            assert executor.scheduling == "pinned-worker"
        finally:
            executor.close()

    def test_sealed_tcp_spelling_requires_addresses(self):
        with pytest.raises(ValueError, match="remote worker addresses"):
            make_executor("pipelined-overlap/sealed-tcp-remote")

    def test_sharded_process_pool_is_the_wire_barrier_combo(self):
        via_legacy = make_executor("sharded", workers=2, pool="process")
        via_combo = make_executor("thread-pool/framed-wire-local", workers=2)
        try:
            assert type(via_legacy) is type(via_combo)
            assert via_legacy.transport == via_combo.transport == "framed-wire-local"
            assert via_legacy.pool == via_combo.pool == "process"
        finally:
            via_legacy.close()
            via_combo.close()


# -- deprecation shims -------------------------------------------------------


class TestDeprecationShims:
    def test_legacy_modules_still_export_their_names(self):
        from repro.runtime.affinity import ResidentProcessExecutor as FromAffinity
        from repro.runtime.pipelined import PipelinedExecutor as FromPipelined
        from repro.runtime.process_pool import (
            AdaptiveShardSizer,
            ProcessPoolEpochExecutor as FromProcessPool,
            answer_shard_task,
        )
        from repro.runtime.remote import RemoteResidentExecutor as FromRemote
        from repro.runtime.sharded import ShardedExecutor as FromSharded, answer_shard

        assert FromSharded is ShardedExecutor
        assert FromPipelined is PipelinedExecutor
        assert FromProcessPool is ProcessPoolEpochExecutor
        assert FromAffinity is ResidentProcessExecutor
        assert FromRemote is RemoteResidentExecutor
        assert callable(answer_shard) and callable(answer_shard_task)
        assert AdaptiveShardSizer(4).plan  # moved to the engine, re-exported

    def test_every_shim_is_an_engine_configuration(self):
        for shim in (
            ShardedExecutor,
            PipelinedExecutor,
            ProcessPoolEpochExecutor,
            ResidentProcessExecutor,
            RemoteResidentExecutor,
        ):
            assert issubclass(shim, StagedEpochEngine)

    def test_shims_keep_their_constructor_signatures(self):
        for executor in (
            ShardedExecutor(num_workers=2, num_shards=3, pool="thread"),
            PipelinedExecutor(num_workers=2, num_shards=3, queue_depth=2),
            ProcessPoolEpochExecutor(num_workers=2, adaptive=False),
            ResidentProcessExecutor(num_workers=2, checkpoint_every=0),
        ):
            executor.close()

    def test_sharded_still_rejects_unknown_pools(self):
        with pytest.raises(ValueError, match="pool must be one of"):
            ShardedExecutor(pool="green-threads")

    def test_pipelined_queue_depth_still_validated(self):
        with pytest.raises(ValueError, match="queue_depth"):
            PipelinedExecutor(queue_depth=0)


# -- stage metrics -----------------------------------------------------------


def build_system(executor: str, num_clients: int = 16, **config_kwargs):
    config = SystemConfig(
        num_clients=num_clients,
        seed=SEED,
        executor=executor,
        executor_workers=2,
        executor_shards=4,
        **config_kwargs,
    )
    system = PrivApproxSystem(config)
    rng = random.Random(SEED)
    system.provision_clients(
        [("value", "REAL")], lambda i: [{"value": rng.uniform(0.0, 8.0)}]
    )
    analyst = Analyst("engine-metrics")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(
        analyst,
        query,
        QueryBudget(),
        parameters=ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5),
    )
    return system, query.query_id


class TestStageMetrics:
    def test_accumulators_are_thread_safe(self):
        metrics = StageMetrics(epoch=0)

        def hammer():
            for _ in range(1000):
                metrics.add_wire_bytes(1)
                metrics.add_late_drops(1)
                metrics.add_stage_seconds("transmit", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.wire_bytes == 4000
        assert metrics.late_drops == 4000
        assert metrics.transmit_seconds == pytest.approx(4.0)

    @pytest.mark.parametrize(
        "executor", ["thread-pool/in-process", "pipelined-overlap/in-process"]
    )
    def test_in_process_epochs_record_stages_without_wire(self, executor):
        system, query_id = build_system(executor)
        try:
            for epoch in range(2):
                system.run_epoch(query_id, epoch)
            metrics = system.executor.stage_metrics
            assert sorted(metrics) == [0, 1]
            for epoch, m in metrics.items():
                assert m.epoch == epoch
                assert m.answer_seconds > 0.0
                assert m.plan_seconds >= 0.0
                assert m.transmit_seconds >= 0.0
                assert m.ingest_seconds >= 0.0
                assert m.wire_bytes == 0  # nothing crossed a process border
                assert m.late_drops == 0
            assert system.executor.epoch_wire_bytes == {0: 0, 1: 0}
        finally:
            system.close()

    def test_wire_transport_epochs_account_every_frame(self):
        system, query_id = build_system("process")
        try:
            system.run_epoch(query_id, 0)
            metrics = system.executor.stage_metrics[0]
            assert metrics.wire_bytes > 0
            # The legacy ledger survives as a view over the unified metrics.
            assert system.executor.epoch_wire_bytes == {0: metrics.wire_bytes}
        finally:
            system.close()

    def test_deadline_gate_records_late_drops_in_metrics(self):
        """The engine's single transmit-boundary gate feeds the metrics: the
        per-epoch late-drop count equals what the epoch report says."""
        from repro.runtime.scenario import EpochDeadline

        system, query_id = build_system("pipelined-overlap/in-process")
        try:
            late = {
                client.config.client_id: 10.0 for client in system.clients[::2]
            }
            system.epoch_deadline = EpochDeadline(0, 1.0, late)
            report = system.run_epoch(query_id, 0)
            dropped = len(report.late_drops)
            assert dropped == len(late)
            assert system.executor.stage_metrics[0].late_drops == dropped
        finally:
            system.close()

    @pytest.mark.parametrize(
        "combo", sorted(f"{s}/{t}" for s, t in DRIVER_COMBOS)
    )
    def test_stage_seconds_never_negative(self, combo, tmp_path):
        """Ledger invariant for every registered driver combination: no stage
        wall-clock may ever be negative.  Regression for answer_seconds being
        derived by subtracting independently measured transmit_seconds from a
        shared span, which could dip below zero and corrupt the ledger."""
        servers = []
        kwargs = {}
        if combo.endswith("/sealed-tcp-remote"):
            servers = [start_server(), start_server()]
            kwargs = dict(
                executor_remote_workers=tuple(
                    f"{server.address[0]}:{server.address[1]}" for server in servers
                ),
                executor_key_file=write_key_file(tmp_path),
            )
        system, query_id = build_system(combo, **kwargs)
        try:
            for epoch in range(2):
                system.run_epoch(query_id, epoch)
            assert sorted(system.executor.stage_metrics) == [0, 1]
            for metrics in system.executor.stage_metrics.values():
                for stage in ("plan", "answer", "transmit", "ingest", "finalize"):
                    seconds = getattr(metrics, f"{stage}_seconds")
                    assert seconds >= 0.0, (combo, stage, seconds)
        finally:
            system.close()
            for server in servers:
                server.stop()

    def test_non_adaptive_engines_never_reshard(self):
        system, query_id = build_system("sharded")
        try:
            for epoch in range(3):
                system.run_epoch(query_id, epoch)
            assert all(
                m.reshard_events == 0
                for m in system.executor.stage_metrics.values()
            )
        finally:
            system.close()


# -- the previously-inexpressible combo --------------------------------------


def start_server() -> RemoteWorkerServer:
    server = RemoteWorkerServer("127.0.0.1", 0, KEY)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def write_key_file(tmp_path) -> str:
    path = tmp_path / "engine.keys"
    path.write_text(KEY.hex() + "\n")
    return str(path)


class TestOverlapSealedTcpCombo:
    """``pipelined-overlap`` × ``sealed-tcp-remote``: snapshot tasks out over
    the sealed transport, batches streamed back in completion order.  The
    combo no legacy executor could express — and it must still match serial
    byte-for-byte."""

    def test_scenario_digest_matches_serial(self, tmp_path):
        servers = [start_server(), start_server()]
        try:
            spec = ScenarioSpec(
                name="engine-overlap-remote",
                seed=513,
                num_clients=14,
                num_epochs=2,
                initial_active_fraction=0.9,
                join_rate=0.1,
                leave_rate=0.1,
            )
            serial = run_scenario(spec, executor="serial")
            remote = run_scenario(
                spec,
                executor="pipelined-overlap/sealed-tcp-remote",
                remote_workers=[
                    f"{server.address[0]}:{server.address[1]}" for server in servers
                ],
                key_file=write_key_file(tmp_path),
            )
            assert remote.digest == serial.digest
            assert remote.total_wire_bytes > 0
        finally:
            for server in servers:
                server.stop()

    def test_make_executor_builds_the_overlap_remote_engine(self, tmp_path):
        server = start_server()
        try:
            executor = make_executor(
                "pipelined-overlap/sealed-tcp-remote",
                remote_workers=[f"{server.address[0]}:{server.address[1]}"],
                key_file=write_key_file(tmp_path),
            )
            try:
                assert isinstance(executor, StagedEpochEngine)
                assert not isinstance(executor, ResidentProcessExecutor)
                assert executor.scheduling == "pipelined-overlap"
                assert executor.transport == "sealed-tcp-remote"
            finally:
                executor.close()
        finally:
            server.stop()
