"""Tests for the deterministic shard planners (balanced and weighted)."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import Shard, plan_shards, plan_weighted_shards


class TestPlanShards:
    def test_single_shard_covers_everything(self):
        assert plan_shards(10, 1) == [Shard(index=0, start=0, stop=10)]

    def test_even_split(self):
        shards = plan_shards(10, 2)
        assert [(s.start, s.stop) for s in shards] == [(0, 5), (5, 10)]

    def test_remainder_spread_over_leading_shards(self):
        shards = plan_shards(10, 3)
        assert [s.num_items for s in shards] == [4, 3, 3]

    def test_more_shards_than_items_yields_empty_shards(self):
        shards = plan_shards(2, 5)
        assert [s.num_items for s in shards] == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert all(s.num_items == 0 for s in plan_shards(0, 3))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(5, 0)

    def test_slices_reassemble_population(self):
        population = list(range(23))
        shards = plan_shards(len(population), 7)
        reassembled = []
        for shard in shards:
            reassembled.extend(population[shard.as_slice()])
        assert reassembled == population

    @given(
        num_items=st.integers(min_value=0, max_value=500),
        num_shards=st.integers(min_value=1, max_value=64),
    )
    def test_partition_properties(self, num_items, num_shards):
        """Shards are contiguous, ordered, balanced and cover [0, num_items)."""
        shards = plan_shards(num_items, num_shards)
        assert len(shards) == num_shards
        assert shards[0].start == 0
        assert shards[-1].stop == num_items
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        sizes = [s.num_items for s in shards]
        assert sum(sizes) == num_items
        assert max(sizes) - min(sizes) <= 1


class TestPlanWeightedShards:
    def test_uniform_weights_stay_roughly_balanced(self):
        shards = plan_weighted_shards([1.0] * 12, 4)
        assert [s.num_items for s in shards] == [3, 3, 3, 3]

    def test_heavy_stretch_gets_fewer_items(self):
        # Clients 0-3 are 9x slower than clients 4-11: the slow stretch is
        # split finer so per-shard predicted cost evens out.
        weights = [9.0] * 4 + [1.0] * 8
        shards = plan_weighted_shards(weights, 4)
        assert [s.num_items for s in shards] == [1, 1, 2, 8]
        costs = [sum(weights[s.start:s.stop]) for s in shards]
        # Predicted per-shard cost lands near the ideal 11; the balanced
        # planner's 3/3/3/3 split would cost [27, 11, 3, 3].
        assert costs == [9.0, 9.0, 18.0, 8.0]

    def test_heavy_tail_item_does_not_collapse_the_plan(self):
        """A heavy item at a boundary must not drag every later shard empty.

        Cutting on the near side of the boundary item keeps it isolatable:
        one pathologically slow client near the tail used to absorb ALL
        items into shard 0, serializing the next epoch on one worker.
        """
        shards = plan_weighted_shards([0.01] * 15 + [5.0], 4)
        assert [(s.start, s.stop) for s in shards] == [(0, 15), (15, 16), (16, 16), (16, 16)]
        shards = plan_weighted_shards([1.0, 1.0, 1.0, 10.0], 2)
        assert [(s.start, s.stop) for s in shards] == [(0, 3), (3, 4)]

    def test_single_dominant_item_isolated(self):
        shards = plan_weighted_shards([100.0, 1.0, 1.0, 1.0], 2)
        assert (shards[0].start, shards[0].stop) == (0, 1)
        assert (shards[1].start, shards[1].stop) == (1, 4)

    def test_zero_or_empty_weights_fall_back_to_balanced(self):
        assert plan_weighted_shards([0.0] * 6, 3) == plan_shards(6, 3)
        assert plan_weighted_shards([], 3) == plan_shards(0, 3)

    def test_bad_weights_fall_back_to_balanced(self):
        assert plan_weighted_shards([1.0, -2.0, 1.0], 2) == plan_shards(3, 2)
        assert plan_weighted_shards([1.0, float("nan")], 2) == plan_shards(2, 2)
        assert plan_weighted_shards([1.0, float("inf")], 2) == plan_shards(2, 2)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            plan_weighted_shards([1.0], 0)

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False), max_size=200
        ),
        num_shards=st.integers(min_value=1, max_value=32),
    )
    def test_partition_properties(self, weights, num_shards):
        """Weighted shards are contiguous, ordered and cover [0, len(weights))."""
        shards = plan_weighted_shards(weights, num_shards)
        assert len(shards) == num_shards
        assert shards[0].start == 0
        assert shards[-1].stop == len(weights)
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        assert sum(s.num_items for s in shards) == len(weights)
