"""Tests for the deterministic shard planner."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import Shard, plan_shards


class TestPlanShards:
    def test_single_shard_covers_everything(self):
        assert plan_shards(10, 1) == [Shard(index=0, start=0, stop=10)]

    def test_even_split(self):
        shards = plan_shards(10, 2)
        assert [(s.start, s.stop) for s in shards] == [(0, 5), (5, 10)]

    def test_remainder_spread_over_leading_shards(self):
        shards = plan_shards(10, 3)
        assert [s.num_items for s in shards] == [4, 3, 3]

    def test_more_shards_than_items_yields_empty_shards(self):
        shards = plan_shards(2, 5)
        assert [s.num_items for s in shards] == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert all(s.num_items == 0 for s in plan_shards(0, 3))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(5, 0)

    def test_slices_reassemble_population(self):
        population = list(range(23))
        shards = plan_shards(len(population), 7)
        reassembled = []
        for shard in shards:
            reassembled.extend(population[shard.as_slice()])
        assert reassembled == population

    @given(
        num_items=st.integers(min_value=0, max_value=500),
        num_shards=st.integers(min_value=1, max_value=64),
    )
    def test_partition_properties(self, num_items, num_shards):
        """Shards are contiguous, ordered, balanced and cover [0, num_items)."""
        shards = plan_shards(num_items, num_shards)
        assert len(shards) == num_shards
        assert shards[0].start == 0
        assert shards[-1].stop == num_items
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        sizes = [s.num_items for s in shards]
        assert sum(sizes) == num_items
        assert max(sizes) - min(sizes) <= 1
