"""Edge cases and failure handling of the process-pool epoch executor.

The equivalence suite pins the process executor to the serial reference on
ordinary populations; this module covers the boundaries (an empty client
population, fewer clients than shards) and the failure contract: a worker
exception, a dead worker process, a parent-side pickling failure, a transmit
or ingest error must all surface from ``run_epoch`` without deadlocking the
pipeline — and the executor must be usable for the next epoch afterwards.
It also covers the adaptive shard sizer's feedback loop directly.
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.core.aggregator import Aggregator
from repro.core.client import Client, ClientConfig
from repro.core.proxy import ProxyNetwork
from repro.runtime import (
    AdaptiveShardSizer,
    EpochContext,
    ProcessPoolEpochExecutor,
    SerialExecutor,
    WireError,
    make_executor,
    plan_shards,
)

PARAMS = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5)


def make_context(num_clients: int) -> EpochContext:
    """A minimal epoch context wired by hand (no PrivApproxSystem).

    Lets the tests exercise populations PrivApproxSystem refuses (0 clients).
    """
    proxies = ProxyNetwork(num_proxies=2)
    analyst = Analyst("process-edge")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    clients = []
    for index in range(num_clients):
        client = Client(
            ClientConfig(client_id=f"edge-{index:03d}", num_proxies=2, seed=2000 + index)
        )
        client.create_table([("value", "REAL")])
        client.ingest([{"value": float(index % 8)}])
        client.subscribe(query, PARAMS)
        clients.append(client)
    aggregator = Aggregator(
        query=query,
        parameters=PARAMS,
        total_clients=max(1, num_clients),
        num_proxies=2,
    )
    return EpochContext(
        clients=clients,
        proxies=proxies,
        aggregator=aggregator,
        consumers=proxies.make_consumers(group_id="process-edge"),
        query_id=query.query_id,
    )


def make_system(num_clients: int = 12, shards: int | None = None) -> tuple:
    config = SystemConfig(
        num_clients=num_clients,
        seed=424,
        executor="process",
        executor_workers=2,
        executor_shards=shards,
    )
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("process-edge")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
    return system, query.query_id


class TestPopulationEdges:
    def test_zero_clients(self):
        """An empty population completes the epoch and produces nothing."""
        executor = ProcessPoolEpochExecutor(num_workers=2, num_shards=4)
        try:
            outcome = executor.run_epoch(make_context(0), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 0
        assert outcome.window_results == ()

    def test_zero_clients_matches_serial(self):
        serial = SerialExecutor()
        process = ProcessPoolEpochExecutor(num_workers=2, num_shards=3)
        try:
            serial_outcome = serial.run_epoch(make_context(0), epoch=0)
            process_outcome = process.run_epoch(make_context(0), epoch=0)
        finally:
            serial.close()
            process.close()
        assert serial_outcome.responses == process_outcome.responses == ()
        assert serial_outcome.window_results == process_outcome.window_results == ()

    def test_fewer_clients_than_shards(self):
        """Trailing empty shards are simply skipped."""
        executor = ProcessPoolEpochExecutor(num_workers=2, num_shards=8)
        try:
            outcome = executor.run_epoch(make_context(3), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 3  # s = 1.0: everyone participates
        assert [r.client_id for r in outcome.responses] == [
            "edge-000",
            "edge-001",
            "edge-002",
        ]

    def test_state_written_back_to_live_clients(self):
        """Advanced RNG state replaces the parent's clients between epochs."""
        context = make_context(6)
        originals = list(context.clients)
        executor = ProcessPoolEpochExecutor(num_workers=2, num_shards=2)
        try:
            executor.run_epoch(context, epoch=0)
        finally:
            executor.close()
        # The list now holds *restored* client objects carrying advanced state.
        assert all(a is not b for a, b in zip(context.clients, originals))
        assert [c.config.client_id for c in context.clients] == [
            c.config.client_id for c in originals
        ]


class TestFailureSurfacing:
    def test_worker_exception_surfaces(self):
        """A client whose local SQL fails inside the worker fails the epoch."""
        system, query_id = make_system(num_clients=8, shards=4)
        # Dropping the table travels with the state snapshot, so the failure
        # happens in the worker process, not in the parent.
        system.clients[5].database.drop_table("private_data")
        with pytest.raises(Exception, match="private_data"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_worker_process_death_surfaces_and_pool_recovers(self):
        """A worker that dies mid-task breaks the pool; the next epoch heals."""
        system, query_id = make_system(num_clients=8, shards=2)

        class Bomb:
            """Pickles fine in the parent; detonates on unpickle in the child."""

            def __reduce__(self):
                return (os._exit, (1,))

        table = system.clients[2].database.table("private_data")
        table.rows.append((Bomb(),))
        with pytest.raises(Exception):  # BrokenProcessPool from the dead worker
            system.run_epoch(query_id, 0)
        # Remove the bomb; the executor must build a fresh pool and succeed.
        del table.rows[-1]
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 8
        system.close()

    def test_unpicklable_client_state_raises_wire_error(self):
        """A pickling failure surfaces before any pipeline stage starts."""
        system, query_id = make_system(num_clients=6, shards=3)
        table = system.clients[1].database.table("private_data")
        table.rows.append((lambda: None,))  # lambdas cannot pickle
        with pytest.raises(WireError, match="serialize"):
            system.run_epoch(query_id, 0)
        # The failure is pre-pipeline: removing it leaves the executor usable.
        del table.rows[-1]
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 6
        system.close()

    def test_transmit_exception_surfaces(self):
        system, query_id = make_system(num_clients=6, shards=3)

        def explode(*args, **kwargs):
            raise RuntimeError("proxy link down")

        system.proxies.transmit_shard = explode
        with pytest.raises(RuntimeError, match="proxy link down"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_ingest_exception_surfaces(self):
        system, query_id = make_system(num_clients=6, shards=3)
        aggregator = system.aggregator_for(query_id)

        def explode(*args, **kwargs):
            raise RuntimeError("aggregator out of memory")

        aggregator.ingest_shares = explode
        with pytest.raises(RuntimeError, match="aggregator out of memory"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_failed_epoch_leaves_no_stale_records(self):
        """The failure-path consumer drain also protects the process executor."""
        system, query_id = make_system(num_clients=8, shards=4)
        aggregator = system.aggregator_for(query_id)
        original = aggregator.ingest_shares
        calls = {"count": 0}

        def fail_once(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient ingest fault")
            return original(*args, **kwargs)

        aggregator.ingest_shares = fail_once
        with pytest.raises(RuntimeError, match="transient ingest fault"):
            system.run_epoch(query_id, 0)
        aggregator.ingest_shares = original
        before = aggregator.shares_received
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 8
        assert aggregator.shares_received - before == 8 * 2
        system.close()

    def test_executor_survives_worker_exception(self):
        """After a failed epoch the executor runs the next one."""
        system, query_id = make_system(num_clients=6, shards=3)
        client = system.clients[0]
        client.database.drop_table("private_data")
        with pytest.raises(Exception, match="private_data"):
            system.run_epoch(query_id, 0)
        client.create_table([("value", "REAL")])
        client.ingest([{"value": 1.0}])
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 6
        system.close()


class TestAdaptiveShardSizer:
    def test_first_plan_is_balanced(self):
        sizer = AdaptiveShardSizer(num_shards=4)
        assert sizer.plan(12) == plan_shards(12, 4)

    def test_timings_move_boundaries(self):
        sizer = AdaptiveShardSizer(num_shards=2)
        shards = sizer.plan(8)
        # Shard 0 (clients 0-3) reports 9x the wall-clock of shard 1.
        sizer.record(shards, {0: 9.0, 1: 1.0})
        replanned = sizer.plan(8)
        assert replanned[0].num_items < replanned[1].num_items
        assert replanned[-1].stop == 8

    def test_population_change_resets_estimates(self):
        sizer = AdaptiveShardSizer(num_shards=2)
        sizer.record(sizer.plan(8), {0: 9.0, 1: 1.0})
        assert sizer.plan(10) == plan_shards(10, 2)

    def test_missing_timings_are_skipped(self):
        sizer = AdaptiveShardSizer(num_shards=2)
        sizer.record(sizer.plan(8), {})
        assert sizer.plan(8) == plan_shards(8, 2)

    def test_ewma_converges_back_after_transient_skew(self):
        """A one-off slow epoch decays out of the estimates instead of sticking."""
        sizer = AdaptiveShardSizer(num_shards=2, smoothing=0.5)
        shards = sizer.plan(8)
        sizer.record(shards, {0: 9.0, 1: 1.0})  # transient: shard 0 looked slow
        assert sizer.plan(8)[0].num_items < 4
        for _ in range(6):  # then epochs where every client costs the same
            shards = sizer.plan(8)
            sizer.record(
                shards,
                {s.index: float(s.num_items) for s in shards if s.num_items > 0},
            )
        assert sizer.plan(8) == plan_shards(8, 2)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveShardSizer(num_shards=2, smoothing=0.0)


class TestConfiguration:
    def test_factory_builds_process_executor(self):
        executor = make_executor("process", workers=2, shards=5)
        assert isinstance(executor, ProcessPoolEpochExecutor)
        assert executor.num_workers == 2
        assert executor.num_shards == 5
        executor.close()

    def test_system_config_accepts_process(self):
        config = SystemConfig(num_clients=4, executor="process")
        assert config.executor == "process"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProcessPoolEpochExecutor(num_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolEpochExecutor(num_workers=2, num_shards=0)
        with pytest.raises(ValueError):
            ProcessPoolEpochExecutor(num_workers=2, queue_depth=0)

    def test_close_is_idempotent(self):
        executor = ProcessPoolEpochExecutor(num_workers=2)
        executor.run_epoch(make_context(4), epoch=0)
        executor.close()
        executor.close()


def make_resident_system(
    num_clients: int = 12,
    shards: int | None = 4,
    checkpoint_every: int = 4,
    num_queries: int = 1,
) -> tuple:
    """A resident-state deployment plus a serial twin for byte comparison."""
    config = SystemConfig(
        num_clients=num_clients,
        seed=868,
        executor="process",
        executor_workers=2,
        executor_shards=shards,
        executor_resident=True,
        executor_checkpoint_every=checkpoint_every,
    )
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("resident-failure")
    query_ids = []
    for index in range(num_queries):
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(0.0, 8.0, 4 + index, open_ended=True),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
        query_ids.append(query.query_id)
    return system, query_ids


def run_serial_twin(num_clients: int, num_epochs: int, num_queries: int = 1) -> dict:
    config = SystemConfig(num_clients=num_clients, seed=868, executor="serial")
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("resident-failure")
    query_ids = []
    for index in range(num_queries):
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(0.0, 8.0, 4 + index, open_ended=True),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
        query_ids.append(query.query_id)
    for epoch in range(num_epochs):
        system.run_epoch_all(epoch) if num_queries > 1 else system.run_epoch(
            query_ids[0], epoch
        )
    out = {
        query_id: serialize_responses(system.responses_log(query_id))
        for query_id in query_ids
    }
    system.close()
    return out


def serialize_responses(responses) -> list[tuple]:
    return [
        (
            r.client_id,
            r.epoch,
            r.truthful_bits,
            r.randomized_bits,
            tuple(share.payload for share in r.encrypted.shares),
        )
        for r in responses
    ]


class TestResidentFailureInjection:
    """Worker death and poisoned fingerprints must re-bootstrap, not corrupt.

    The parent holds a checkpoint (live clients' last grafted streams) plus a
    replay log; killing a pinned worker or poisoning the expected fingerprint
    must fall back to checkpoint + replay + bootstrap for exactly the
    affected shards, with every subsequent byte equal to the serial
    reference — and the run must terminate (an un-acked shard would
    otherwise hang the collector).
    """

    def test_killed_worker_rebootstraps_byte_identically(self):
        system, (query_id,) = make_resident_system(num_clients=12, shards=4)
        executor = system.executor
        # Pin the boundaries: a wall-clock-driven adaptive re-shard would
        # re-bootstrap moved shards and break the exact frame counts below
        # (adaptive moves have their own test).
        executor.adaptive = False
        system.run_epoch(query_id, 0)
        system.run_epoch(query_id, 1)
        bootstraps_before = executor.bootstrap_frames
        replaced_before = executor._router.workers_replaced
        # Kill the worker pinned to shards 0 and 2 between epochs.
        victim = executor._router._workers[executor._router.slot_for(0)].process
        victim.kill()
        victim.join(timeout=5.0)
        system.run_epoch(query_id, 2)
        system.run_epoch(query_id, 3)
        assert executor._router.workers_replaced == replaced_before + 1
        # Exactly the dead worker's shards re-bootstrapped (2 of 4 shards).
        assert executor.bootstrap_frames == bootstraps_before + 2
        resident = serialize_responses(system.responses_log(query_id))
        system.close()
        assert run_serial_twin(12, 4)[query_id] == resident

    def test_killed_worker_with_stale_checkpoint_replays_exactly(self):
        """checkpoint_every=0: recovery must replay the whole epoch log."""
        system, (query_id,) = make_resident_system(
            num_clients=10, shards=2, checkpoint_every=0
        )
        executor = system.executor
        for epoch in range(3):
            system.run_epoch(query_id, epoch)
        victim = executor._router._workers[0].process
        victim.kill()
        victim.join(timeout=5.0)
        for epoch in range(3, 5):
            system.run_epoch(query_id, epoch)
        resident = serialize_responses(system.responses_log(query_id))
        system.close()
        assert run_serial_twin(10, 5)[query_id] == resident

    def test_poisoned_fingerprint_triggers_rebootstrap(self):
        """A fingerprint mismatch makes the worker refuse; the parent recovers."""
        system, (query_id,) = make_resident_system(num_clients=12, shards=4)
        executor = system.executor
        # Pin the boundaries: an adaptive re-shard at epoch 2 would silently
        # re-bootstrap the poisoned shard before the mismatch could fire.
        executor.adaptive = False
        system.run_epoch(query_id, 0)
        system.run_epoch(query_id, 1)
        assert executor.rebootstraps == 0
        # Simulate a poisoned ShardAck: the recorded fingerprint no longer
        # matches the worker-resident state.
        executor._shards[1].fingerprint = b"poisoned" * 4
        system.run_epoch(query_id, 2)
        assert executor.rebootstraps == 1
        system.run_epoch(query_id, 3)
        resident = serialize_responses(system.responses_log(query_id))
        system.close()
        assert run_serial_twin(12, 4)[query_id] == resident

    def test_mid_run_reshard_migrates_and_stays_byte_identical(self):
        """Forced boundary moves sync state back and re-bootstrap moved shards."""
        system, query_ids = make_resident_system(
            num_clients=12, shards=3, num_queries=2
        )
        executor = system.executor
        system.run_epoch_all(0)
        system.run_epoch_all(1)
        # Prime the sizer with a spreadable heavy skew (three heavy clients
        # bunched into shard 0) so the cooldown-guarded replan moves the
        # boundaries mid-run.
        executor._sizer.prime([6.0] * 3 + [0.1] * 9)
        system.run_epoch_all(2)
        system.run_epoch_all(3)
        assert executor.bootstrap_frames > 3  # moved shards re-bootstrapped
        resident = {
            query_id: serialize_responses(system.responses_log(query_id))
            for query_id in query_ids
        }
        system.close()
        assert run_serial_twin(12, 4, num_queries=2) == resident

    def test_worker_exception_surfaces_and_recovers(self):
        """A worker-side failure arrives as an error ack, not a hang."""
        from repro.runtime import ResidentWorkerError

        system, (query_id,) = make_resident_system(num_clients=8, shards=4)
        system.run_epoch(query_id, 0)
        client = system.clients[5]
        client.database.drop_table("private_data")
        with pytest.raises(ResidentWorkerError, match="private_data"):
            system.run_epoch(query_id, 1)
        client.create_table([("value", "REAL")])
        client.ingest([{"value": 5.0}])
        report = system.run_epoch(query_id, 2)
        assert report.num_participants == 8
        system.close()

    def test_unpicklable_client_state_raises_wire_error(self):
        system, (query_id,) = make_resident_system(num_clients=6, shards=3)
        table = system.clients[1].database.table("private_data")
        table.rows.append((lambda: None,))  # lambdas cannot pickle
        with pytest.raises(WireError, match="serialize"):
            system.run_epoch(query_id, 0)
        del table.rows[-1]
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 6
        system.close()

    def test_close_exports_resident_state_to_live_clients(self):
        """Shutdown is an export-on-demand point: parent clients end current."""
        system, (query_id,) = make_resident_system(
            num_clients=6, shards=2, checkpoint_every=0
        )
        for epoch in range(3):
            system.run_epoch(query_id, epoch)
        fingerprints = {
            index: state.fingerprint
            for index, state in system.executor._shards.items()
        }
        executor = system.executor
        shard_states = dict(executor._shards)
        system.close()
        from repro.runtime import shard_fingerprint

        for index, state in shard_states.items():
            clients = system.clients[state.start : state.stop]
            assert shard_fingerprint(clients) == fingerprints[index]


class TestResidentParentSideMutations:
    """Parent-side mutations the delta protocol must not lose.

    Two regressions: an in-place row edit that keeps the table length (a
    count-only baseline would ship no delta and leave the worker reading
    stale rows), and a subscription change whose checkpoint ack never lands
    because the pinned worker dies (recovery replay must run under the
    subscriptions the logged epochs actually used).
    """

    def _run_lockstep(self, executor_kind, num_epochs, actions):
        """Run epochs with per-epoch mutation callbacks; return the byte log.

        ``actions`` maps epoch → callback(system, resident) applied *after*
        that epoch; callbacks receive whether this is the resident run so
        worker-kill steps can no-op on the serial twin.
        """
        resident = executor_kind == "resident"
        if resident:
            system, (query_id,) = make_resident_system(
                num_clients=10, shards=2, checkpoint_every=0
            )
            # Pin the boundaries: the mutation tests assert exact bootstrap
            # frame counts, which an adaptive re-shard would inflate.
            system.executor.adaptive = False
        else:
            config = SystemConfig(num_clients=10, seed=868, executor="serial")
            system = PrivApproxSystem(config)
            system.provision_clients(
                [("value", "REAL")], lambda i: [{"value": float(i % 8)}]
            )
            analyst = Analyst("resident-failure")
            query = analyst.create_query(
                "SELECT value FROM private_data",
                AnswerSpec(
                    buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
                    value_column="value",
                ),
                frequency_seconds=60.0,
                window_seconds=60.0,
                slide_seconds=60.0,
            )
            system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
            query_id = query.query_id
        for epoch in range(num_epochs):
            system.run_epoch(query_id, epoch)
            action = actions.get(epoch)
            if action is not None:
                action(system, resident)
        log = serialize_responses(system.responses_log(query_id))
        executor = system.executor
        system.close()
        return log, executor

    def test_in_place_row_edit_reaches_the_worker(self):
        """Same-length content changes must dirty the shard, not go stale."""

        def edit_row(system, resident):
            table = system.clients[3].database.table("private_data")
            table.rows[0] = (7.25,)

        actions = {1: edit_row}
        serial_log, _ = self._run_lockstep("serial", 4, actions)
        resident_log, executor = self._run_lockstep("resident", 4, actions)
        assert resident_log == serial_log
        # The edited shard was synced back and re-bootstrapped (2 initial + 1).
        assert executor.bootstrap_frames == 3

    def test_unacked_unsubscribe_survives_worker_death(self):
        """Recovery replay runs under the subscriptions the log ran under."""

        def unsubscribe_and_kill(system, resident):
            query_id = system.clients[0].subscribed_query_ids[0]
            system.clients[0].unsubscribe(query_id)
            if resident:
                router = system.executor._router
                victim = router._workers[router.slot_for(0)].process
                victim.kill()
                victim.join(timeout=5.0)

        def resubscribe(system, resident):
            query_id = next(iter(system._queries))
            system.clients[0].subscribe(system._queries[query_id], PARAMS)

        actions = {1: unsubscribe_and_kill, 2: resubscribe}
        serial_log, _ = self._run_lockstep("serial", 5, actions)
        resident_log, _ = self._run_lockstep("resident", 5, actions)
        assert resident_log == serial_log
