"""Edge cases and failure handling of the process-pool epoch executor.

The equivalence suite pins the process executor to the serial reference on
ordinary populations; this module covers the boundaries (an empty client
population, fewer clients than shards) and the failure contract: a worker
exception, a dead worker process, a parent-side pickling failure, a transmit
or ingest error must all surface from ``run_epoch`` without deadlocking the
pipeline — and the executor must be usable for the next epoch afterwards.
It also covers the adaptive shard sizer's feedback loop directly.
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.core.aggregator import Aggregator
from repro.core.client import Client, ClientConfig
from repro.core.proxy import ProxyNetwork
from repro.runtime import (
    AdaptiveShardSizer,
    EpochContext,
    ProcessPoolEpochExecutor,
    SerialExecutor,
    WireError,
    make_executor,
    plan_shards,
)

PARAMS = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5)


def make_context(num_clients: int) -> EpochContext:
    """A minimal epoch context wired by hand (no PrivApproxSystem).

    Lets the tests exercise populations PrivApproxSystem refuses (0 clients).
    """
    proxies = ProxyNetwork(num_proxies=2)
    analyst = Analyst("process-edge")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    clients = []
    for index in range(num_clients):
        client = Client(
            ClientConfig(client_id=f"edge-{index:03d}", num_proxies=2, seed=2000 + index)
        )
        client.create_table([("value", "REAL")])
        client.ingest([{"value": float(index % 8)}])
        client.subscribe(query, PARAMS)
        clients.append(client)
    aggregator = Aggregator(
        query=query,
        parameters=PARAMS,
        total_clients=max(1, num_clients),
        num_proxies=2,
    )
    return EpochContext(
        clients=clients,
        proxies=proxies,
        aggregator=aggregator,
        consumers=proxies.make_consumers(group_id="process-edge"),
        query_id=query.query_id,
    )


def make_system(num_clients: int = 12, shards: int | None = None) -> tuple:
    config = SystemConfig(
        num_clients=num_clients,
        seed=424,
        executor="process",
        executor_workers=2,
        executor_shards=shards,
    )
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("process-edge")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
    return system, query.query_id


class TestPopulationEdges:
    def test_zero_clients(self):
        """An empty population completes the epoch and produces nothing."""
        executor = ProcessPoolEpochExecutor(num_workers=2, num_shards=4)
        try:
            outcome = executor.run_epoch(make_context(0), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 0
        assert outcome.window_results == ()

    def test_zero_clients_matches_serial(self):
        serial = SerialExecutor()
        process = ProcessPoolEpochExecutor(num_workers=2, num_shards=3)
        try:
            serial_outcome = serial.run_epoch(make_context(0), epoch=0)
            process_outcome = process.run_epoch(make_context(0), epoch=0)
        finally:
            serial.close()
            process.close()
        assert serial_outcome.responses == process_outcome.responses == ()
        assert serial_outcome.window_results == process_outcome.window_results == ()

    def test_fewer_clients_than_shards(self):
        """Trailing empty shards are simply skipped."""
        executor = ProcessPoolEpochExecutor(num_workers=2, num_shards=8)
        try:
            outcome = executor.run_epoch(make_context(3), epoch=0)
        finally:
            executor.close()
        assert outcome.num_participants == 3  # s = 1.0: everyone participates
        assert [r.client_id for r in outcome.responses] == [
            "edge-000",
            "edge-001",
            "edge-002",
        ]

    def test_state_written_back_to_live_clients(self):
        """Advanced RNG state replaces the parent's clients between epochs."""
        context = make_context(6)
        originals = list(context.clients)
        executor = ProcessPoolEpochExecutor(num_workers=2, num_shards=2)
        try:
            executor.run_epoch(context, epoch=0)
        finally:
            executor.close()
        # The list now holds *restored* client objects carrying advanced state.
        assert all(a is not b for a, b in zip(context.clients, originals))
        assert [c.config.client_id for c in context.clients] == [
            c.config.client_id for c in originals
        ]


class TestFailureSurfacing:
    def test_worker_exception_surfaces(self):
        """A client whose local SQL fails inside the worker fails the epoch."""
        system, query_id = make_system(num_clients=8, shards=4)
        # Dropping the table travels with the state snapshot, so the failure
        # happens in the worker process, not in the parent.
        system.clients[5].database.drop_table("private_data")
        with pytest.raises(Exception, match="private_data"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_worker_process_death_surfaces_and_pool_recovers(self):
        """A worker that dies mid-task breaks the pool; the next epoch heals."""
        system, query_id = make_system(num_clients=8, shards=2)

        class Bomb:
            """Pickles fine in the parent; detonates on unpickle in the child."""

            def __reduce__(self):
                return (os._exit, (1,))

        table = system.clients[2].database.table("private_data")
        table.rows.append((Bomb(),))
        with pytest.raises(Exception):  # BrokenProcessPool from the dead worker
            system.run_epoch(query_id, 0)
        # Remove the bomb; the executor must build a fresh pool and succeed.
        del table.rows[-1]
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 8
        system.close()

    def test_unpicklable_client_state_raises_wire_error(self):
        """A pickling failure surfaces before any pipeline stage starts."""
        system, query_id = make_system(num_clients=6, shards=3)
        table = system.clients[1].database.table("private_data")
        table.rows.append((lambda: None,))  # lambdas cannot pickle
        with pytest.raises(WireError, match="serialize"):
            system.run_epoch(query_id, 0)
        # The failure is pre-pipeline: removing it leaves the executor usable.
        del table.rows[-1]
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 6
        system.close()

    def test_transmit_exception_surfaces(self):
        system, query_id = make_system(num_clients=6, shards=3)

        def explode(*args, **kwargs):
            raise RuntimeError("proxy link down")

        system.proxies.transmit_shard = explode
        with pytest.raises(RuntimeError, match="proxy link down"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_ingest_exception_surfaces(self):
        system, query_id = make_system(num_clients=6, shards=3)
        aggregator = system.aggregator_for(query_id)

        def explode(*args, **kwargs):
            raise RuntimeError("aggregator out of memory")

        aggregator.ingest_shares = explode
        with pytest.raises(RuntimeError, match="aggregator out of memory"):
            system.run_epoch(query_id, 0)
        system.close()

    def test_failed_epoch_leaves_no_stale_records(self):
        """The failure-path consumer drain also protects the process executor."""
        system, query_id = make_system(num_clients=8, shards=4)
        aggregator = system.aggregator_for(query_id)
        original = aggregator.ingest_shares
        calls = {"count": 0}

        def fail_once(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient ingest fault")
            return original(*args, **kwargs)

        aggregator.ingest_shares = fail_once
        with pytest.raises(RuntimeError, match="transient ingest fault"):
            system.run_epoch(query_id, 0)
        aggregator.ingest_shares = original
        before = aggregator.shares_received
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 8
        assert aggregator.shares_received - before == 8 * 2
        system.close()

    def test_executor_survives_worker_exception(self):
        """After a failed epoch the executor runs the next one."""
        system, query_id = make_system(num_clients=6, shards=3)
        client = system.clients[0]
        client.database.drop_table("private_data")
        with pytest.raises(Exception, match="private_data"):
            system.run_epoch(query_id, 0)
        client.create_table([("value", "REAL")])
        client.ingest([{"value": 1.0}])
        report = system.run_epoch(query_id, 1)
        assert report.num_participants == 6
        system.close()


class TestAdaptiveShardSizer:
    def test_first_plan_is_balanced(self):
        sizer = AdaptiveShardSizer(num_shards=4)
        assert sizer.plan(12) == plan_shards(12, 4)

    def test_timings_move_boundaries(self):
        sizer = AdaptiveShardSizer(num_shards=2)
        shards = sizer.plan(8)
        # Shard 0 (clients 0-3) reports 9x the wall-clock of shard 1.
        sizer.record(shards, {0: 9.0, 1: 1.0})
        replanned = sizer.plan(8)
        assert replanned[0].num_items < replanned[1].num_items
        assert replanned[-1].stop == 8

    def test_population_change_resets_estimates(self):
        sizer = AdaptiveShardSizer(num_shards=2)
        sizer.record(sizer.plan(8), {0: 9.0, 1: 1.0})
        assert sizer.plan(10) == plan_shards(10, 2)

    def test_missing_timings_are_skipped(self):
        sizer = AdaptiveShardSizer(num_shards=2)
        sizer.record(sizer.plan(8), {})
        assert sizer.plan(8) == plan_shards(8, 2)

    def test_ewma_converges_back_after_transient_skew(self):
        """A one-off slow epoch decays out of the estimates instead of sticking."""
        sizer = AdaptiveShardSizer(num_shards=2, smoothing=0.5)
        shards = sizer.plan(8)
        sizer.record(shards, {0: 9.0, 1: 1.0})  # transient: shard 0 looked slow
        assert sizer.plan(8)[0].num_items < 4
        for _ in range(6):  # then epochs where every client costs the same
            shards = sizer.plan(8)
            sizer.record(
                shards,
                {s.index: float(s.num_items) for s in shards if s.num_items > 0},
            )
        assert sizer.plan(8) == plan_shards(8, 2)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveShardSizer(num_shards=2, smoothing=0.0)


class TestConfiguration:
    def test_factory_builds_process_executor(self):
        executor = make_executor("process", workers=2, shards=5)
        assert isinstance(executor, ProcessPoolEpochExecutor)
        assert executor.num_workers == 2
        assert executor.num_shards == 5
        executor.close()

    def test_system_config_accepts_process(self):
        config = SystemConfig(num_clients=4, executor="process")
        assert config.executor == "process"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProcessPoolEpochExecutor(num_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolEpochExecutor(num_workers=2, num_shards=0)
        with pytest.raises(ValueError):
            ProcessPoolEpochExecutor(num_workers=2, queue_depth=0)

    def test_close_is_idempotent(self):
        executor = ProcessPoolEpochExecutor(num_workers=2)
        executor.run_epoch(make_context(4), epoch=0)
        executor.close()
        executor.close()
