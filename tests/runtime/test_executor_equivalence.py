"""Equivalence of the parallel runtimes with the serial reference executor.

The property the runtime guarantees (the seeded-equivalence contract of
``docs/ARCHITECTURE.md``): for the same system seed, the sharded, pipelined
and process-pool executors produce *identical* results to the serial
executor — same participants, same response logs, byte-identical window
histograms (estimates AND error bounds, since the calibration RNG is seeded
from the system seed) — regardless of shard count, worker count or pool
kind.  For the ``process`` executor this additionally pins the wire format:
client state travels to the workers as serialized shard tasks and the
advanced state ships back, so a multi-epoch run only matches serial if the
snapshots resume every RNG and keystream mid-stream exactly.

Multi-query epochs extend the contract twice over: ``run_epoch_all`` must
produce, per query, exactly what the serial executor produces for the same
multi-query epoch (any executor, any shard count), *and* — because every
client holds one independent seeded RNG per query — each query's results
must be byte-identical whether it runs alone or co-subscribed with others.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)

SEED = 20260727


def run_deployment(
    num_clients: int,
    *,
    executor: str = "serial",
    workers: int = 4,
    shards: int | None = None,
    pool: str = "thread",
    sampling_fraction: float = 0.8,
    num_epochs: int = 2,
    seed: int = SEED,
    resident: bool = False,
    checkpoint_every: int = 4,
):
    """Run a small deployment end-to-end and return its observable outputs."""
    config = SystemConfig(
        num_clients=num_clients,
        num_proxies=2,
        seed=seed,
        executor=executor,
        executor_workers=workers,
        executor_shards=shards,
        executor_pool=pool,
        executor_resident=resident,
        executor_checkpoint_every=checkpoint_every,
    )
    system = PrivApproxSystem(config)
    rng = random.Random(seed)
    system.provision_clients(
        [("value", "REAL")], lambda i: [{"value": rng.uniform(0.0, 8.0)}]
    )
    analyst = Analyst("equivalence")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(
        analyst,
        query,
        QueryBudget(),
        parameters=ExecutionParameters(
            sampling_fraction=sampling_fraction, p=0.9, q=0.5
        ),
    )
    reports = system.run_epochs(query.query_id, num_epochs)
    system.flush(query.query_id)
    system.close()
    results = analyst.results_for(query.query_id)
    responses = system.responses_log(query.query_id)
    return reports, results, responses


def serialize_results(results) -> bytes:
    """Canonical byte serialization of the analyst-facing window results."""
    out = bytearray()
    for result in results:
        out += struct.pack(">ddqq", result.window.start, result.window.end,
                           result.num_answers, result.population)
        for bucket in result.histogram.buckets:
            out += struct.pack(
                ">qdd", bucket.bucket_index, bucket.estimate, bucket.error_bound
            )
    return bytes(out)


def serialize_responses(responses) -> list[tuple]:
    return [
        (r.client_id, r.epoch, r.truthful_bits, r.randomized_bits)
        for r in responses
    ]


@pytest.mark.parametrize(
    "executor",
    [
        "sharded",
        "pipelined",
        "process",
        # Canonical driver spellings: the engine path the legacy names alias.
        "inline/in-process",
        "thread-pool/in-process",
        "pipelined-overlap/in-process",
    ],
)
class TestParallelExecutorsMatchSerial:
    @pytest.mark.parametrize("num_clients", [1, 50, 100])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_identical_outputs_across_shard_counts(
        self, executor, num_clients, num_shards
    ):
        serial_reports, serial_results, serial_responses = run_deployment(num_clients)
        parallel_reports, parallel_results, parallel_responses = run_deployment(
            num_clients, executor=executor, workers=4, shards=num_shards
        )
        assert [r.num_participants for r in serial_reports] == [
            r.num_participants for r in parallel_reports
        ]
        assert serialize_responses(serial_responses) == serialize_responses(
            parallel_responses
        )
        assert serialize_results(serial_results) == serialize_results(parallel_results)

    def test_fewer_clients_than_workers(self, executor):
        _, serial_results, serial_responses = run_deployment(3)
        _, parallel_results, parallel_responses = run_deployment(
            3, executor=executor, workers=8, shards=8
        )
        assert serialize_responses(serial_responses) == serialize_responses(
            parallel_responses
        )
        assert serialize_results(serial_results) == serialize_results(parallel_results)

    def test_zero_participant_shards(self, executor):
        """A tiny sampling fraction leaves whole shards without participants."""
        _, serial_results, serial_responses = run_deployment(
            20, sampling_fraction=0.05, num_epochs=3
        )
        _, parallel_results, parallel_responses = run_deployment(
            20,
            executor=executor,
            workers=4,
            shards=10,
            sampling_fraction=0.05,
            num_epochs=3,
        )
        # With s=0.05 over 20 clients most of the 10 shards are empty of
        # participants every epoch; results must still line up exactly.
        assert len(serial_responses) < 20 * 3
        assert serialize_responses(serial_responses) == serialize_responses(
            parallel_responses
        )
        assert serialize_results(serial_results) == serialize_results(parallel_results)

    def test_more_shards_than_clients(self, executor):
        _, serial_results, serial_responses = run_deployment(5)
        _, parallel_results, parallel_responses = run_deployment(
            5, executor=executor, workers=2, shards=7
        )
        assert serialize_responses(serial_responses) == serialize_responses(
            parallel_responses
        )
        assert serialize_results(serial_results) == serialize_results(parallel_results)

    def test_seeded_runs_are_reproducible(self, executor):
        """Two identical parallel runs agree byte-for-byte with each other."""
        first = run_deployment(40, executor=executor, workers=4, shards=4)
        second = run_deployment(40, executor=executor, workers=4, shards=4)
        assert serialize_results(first[1]) == serialize_results(second[1])
        assert serialize_responses(first[2]) == serialize_responses(second[2])


class TestPipelinedMatchesSharded:
    def test_pipelined_and_sharded_agree_directly(self):
        """Transitivity check without the serial baseline in the middle."""
        _, sharded_results, sharded_responses = run_deployment(
            60, executor="sharded", workers=4, shards=6
        )
        _, pipelined_results, pipelined_responses = run_deployment(
            60, executor="pipelined", workers=3, shards=5
        )
        assert serialize_responses(sharded_responses) == serialize_responses(
            pipelined_responses
        )
        assert serialize_results(sharded_results) == serialize_results(
            pipelined_results
        )


def run_multi_deployment(
    num_clients: int,
    num_queries: int,
    *,
    executor: str = "serial",
    workers: int = 4,
    shards: int | None = None,
    sampling_fraction: float = 0.8,
    num_epochs: int = 2,
    seed: int = SEED,
    single_query_epochs: bool = False,
    resident: bool = False,
    checkpoint_every: int = 4,
):
    """Run N concurrent queries end-to-end and return per-query outputs.

    ``single_query_epochs=True`` answers each query in its own full
    ``run_epoch`` pass instead of the shared ``run_epoch_all`` pass — the
    baseline the RNG-isolation tests compare against.  Queries differ in
    bucket resolution so a cross-query mix-up cannot cancel out.
    """
    config = SystemConfig(
        num_clients=num_clients,
        num_proxies=2,
        seed=seed,
        executor=executor,
        executor_workers=workers,
        executor_shards=shards,
        executor_resident=resident,
        executor_checkpoint_every=checkpoint_every,
    )
    system = PrivApproxSystem(config)
    rng = random.Random(seed)
    system.provision_clients(
        [("value", "REAL")], lambda i: [{"value": rng.uniform(0.0, 8.0)}]
    )
    analyst = Analyst("equivalence-multi")
    query_ids = []
    for index in range(num_queries):
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(0.0, 8.0, 4 + index, open_ended=True),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(
                sampling_fraction=sampling_fraction, p=0.9, q=0.5
            ),
        )
        query_ids.append(query.query_id)
    for epoch in range(num_epochs):
        if single_query_epochs:
            for query_id in query_ids:
                system.run_epoch(query_id, epoch)
        else:
            system.run_epoch_all(epoch)
    per_query = {}
    for query_id in query_ids:
        system.flush(query_id)
        per_query[query_id] = (
            serialize_results(analyst.results_for(query_id)),
            serialize_responses(system.responses_log(query_id)),
        )
    system.close()
    return per_query


@pytest.mark.parametrize(
    "executor", ["sharded", "pipelined", "process", "inline/in-process"]
)
@pytest.mark.parametrize("num_queries", [2, 3])
class TestMultiQueryExecutorsMatchSerial:
    """run_epoch_all: every executor serves N queries from one pass, byte-identically."""

    def test_identical_outputs_per_query(self, executor, num_queries):
        serial = run_multi_deployment(40, num_queries)
        parallel = run_multi_deployment(
            40, num_queries, executor=executor, workers=4, shards=5
        )
        assert serial.keys() == parallel.keys()
        for query_id in serial:
            assert parallel[query_id] == serial[query_id]

    def test_more_shards_than_clients(self, executor, num_queries):
        serial = run_multi_deployment(5, num_queries)
        parallel = run_multi_deployment(
            5, num_queries, executor=executor, workers=2, shards=7
        )
        assert parallel == serial

    def test_sparse_participation(self, executor, num_queries):
        serial = run_multi_deployment(
            20, num_queries, sampling_fraction=0.05, num_epochs=3
        )
        parallel = run_multi_deployment(
            20,
            num_queries,
            executor=executor,
            workers=4,
            shards=10,
            sampling_fraction=0.05,
            num_epochs=3,
        )
        assert parallel == serial


class TestPerQueryRngIsolation:
    """The prerequisite bugfix: co-subscribed queries cannot perturb each other.

    Each client derives an independent seeded RNG per query id, so a query's
    sampling and randomization draws are the same whether the epoch serves it
    alone or alongside other queries.
    """

    def test_results_identical_with_and_without_cosubscription(self):
        alone = run_multi_deployment(30, 1, single_query_epochs=True)
        (query_id, alone_outputs), = alone.items()
        for num_queries in (2, 3):
            together = run_multi_deployment(30, num_queries)
            assert together[query_id] == alone_outputs, (
                f"co-subscribing {num_queries - 1} extra quer(y/ies) changed "
                f"query {query_id}'s bytes"
            )

    def test_single_query_run_epoch_all_matches_run_epoch(self):
        """The shared pass degenerates cleanly: one query, same bytes."""
        via_run_epoch = run_multi_deployment(30, 1, single_query_epochs=True)
        via_run_epoch_all = run_multi_deployment(30, 1)
        assert via_run_epoch_all == via_run_epoch

    def test_sequential_multi_query_epochs_match_shared_pass(self):
        """Answering N queries in N passes equals one shared pass, per query."""
        sequential = run_multi_deployment(25, 3, single_query_epochs=True)
        shared = run_multi_deployment(25, 3)
        assert shared == sequential


@pytest.mark.parametrize("executor", ["pipelined", "process"])
class TestMultiQueryFailureIsolation:
    """A failed multi-query epoch must not poison any query's next epoch.

    The failure-path consumer drain covers *every* query's shard consumers:
    records published for queries that never got ingested (because another
    query's ingest failed first) must not linger and be replayed into the
    wrong epoch.
    """

    def _build_system(self, executor):
        config = SystemConfig(
            num_clients=12,
            seed=SEED,
            executor=executor,
            executor_workers=2,
            executor_shards=3,
        )
        system = PrivApproxSystem(config)
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": float(i % 8)}]
        )
        analyst = Analyst("equivalence-multi-failure")
        query_ids = []
        for index in range(2):
            query = analyst.create_query(
                "SELECT value FROM private_data",
                AnswerSpec(
                    buckets=RangeBuckets.uniform(0.0, 8.0, 4 + index, open_ended=True),
                    value_column="value",
                ),
                frequency_seconds=60.0,
                window_seconds=60.0,
                slide_seconds=60.0,
            )
            system.submit_query(
                analyst,
                query,
                QueryBudget(),
                parameters=ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5),
            )
            query_ids.append(query.query_id)
        return system, query_ids

    def test_one_querys_ingest_failure_does_not_disturb_the_others(self, executor):
        system, query_ids = self._build_system(executor)
        failing = system.aggregator_for(query_ids[0])
        healthy = system.aggregator_for(query_ids[1])
        original = failing.ingest_shares
        calls = {"count": 0}

        def fail_once(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient ingest fault")
            return original(*args, **kwargs)

        failing.ingest_shares = fail_once
        with pytest.raises(RuntimeError, match="transient ingest fault"):
            system.run_epoch_all(0)
        failing.ingest_shares = original

        # Epoch 1 must deliver exactly its own shares to *both* aggregators:
        # with s = 1.0 that is 12 participants x 2 proxies per query.  Any
        # records left over from the failed epoch would inflate the counts.
        before = (failing.shares_received, healthy.shares_received)
        reports = system.run_epoch_all(1)
        assert all(r.num_participants == 12 for r in reports.values())
        assert failing.shares_received - before[0] == 12 * 2
        assert healthy.shares_received - before[1] == 12 * 2
        system.close()


class TestResidentStateMatchesSerial:
    """Worker-resident state (wire v3) is byte-invisible: residency on ≡ off.

    The resident process executor keeps client state inside pinned workers
    and ships deltas/fingerprints instead of snapshots; for a fixed seed its
    outputs must equal the serial reference — across checkpoint cadences
    (every epoch, periodic, on-demand only), multi-epoch runs whose streams
    resume from resident state, and multi-query epochs.
    """

    @pytest.mark.parametrize("checkpoint_every", [0, 1, 3])
    def test_identical_outputs_across_checkpoint_cadences(self, checkpoint_every):
        _, serial_results, serial_responses = run_deployment(30, num_epochs=4)
        _, resident_results, resident_responses = run_deployment(
            30,
            executor="process",
            workers=2,
            shards=5,
            num_epochs=4,
            resident=True,
            checkpoint_every=checkpoint_every,
        )
        assert serialize_responses(serial_responses) == serialize_responses(
            resident_responses
        )
        assert serialize_results(serial_results) == serialize_results(resident_results)

    def test_residency_on_equals_residency_off(self):
        """Same executor kind, residency toggled: byte-identical either way."""
        snapshot = run_deployment(
            25, executor="process", workers=2, shards=4, num_epochs=3
        )
        resident = run_deployment(
            25, executor="process", workers=2, shards=4, num_epochs=3, resident=True
        )
        assert serialize_responses(snapshot[2]) == serialize_responses(resident[2])
        assert serialize_results(snapshot[1]) == serialize_results(resident[1])

    def test_multi_query_epochs_with_residency(self):
        serial = run_multi_deployment(20, 3, num_epochs=3)
        resident = run_multi_deployment(
            20, 3, executor="process", workers=2, shards=4, num_epochs=3, resident=True
        )
        assert resident == serial

    def test_sparse_participation_with_residency(self):
        serial = run_multi_deployment(
            15, 2, sampling_fraction=0.05, num_epochs=3
        )
        resident = run_multi_deployment(
            15,
            2,
            executor="process",
            workers=2,
            shards=6,
            sampling_fraction=0.05,
            num_epochs=3,
            resident=True,
            checkpoint_every=2,
        )
        assert resident == serial


@pytest.mark.slow
class TestProcessPool:
    def test_process_pool_matches_serial(self):
        """The picklable shard tasks also run (and agree) in a process pool.

        Client state advanced in the workers is shipped back between epochs,
        so a multi-epoch run must still match the serial reference exactly.
        """
        _, serial_results, serial_responses = run_deployment(12, num_epochs=2)
        _, sharded_results, sharded_responses = run_deployment(
            12, executor="sharded", workers=2, shards=2, pool="process", num_epochs=2
        )
        assert serialize_responses(serial_responses) == serialize_responses(
            sharded_responses
        )
        assert serialize_results(serial_results) == serialize_results(sharded_results)


class TestIndexedAnswerPathMatchesScan:
    """The compiled columnar answer path vs the forced row-scan reference.

    The serial reference runs with ``SQLDB_FORCE_SCAN=1`` (the frozen
    interpreter); every executor configuration then runs the same
    deployment on the default compiled path.  Response logs and window
    results must be byte-identical — the fast path may not be observable
    anywhere above the SQL engine.  (The environment variable reaches
    process-pool workers because pools fork after the test sets it.)
    """

    CONFIGS = [
        ("serial", {}),
        ("sharded", {"workers": 3, "shards": 5}),
        ("pipelined", {"workers": 3, "shards": 5}),
        ("process", {"workers": 2, "shards": 4}),
        (
            "process-resident",
            {"workers": 2, "shards": 4, "resident": True, "checkpoint_every": 2},
        ),
        ("inline/in-process", {}),
    ]

    @pytest.mark.parametrize(
        "label,kwargs", CONFIGS, ids=[label for label, _ in CONFIGS]
    )
    def test_digests_identical_to_serial_scan(self, label, kwargs, monkeypatch):
        monkeypatch.setenv("SQLDB_FORCE_SCAN", "1")
        _, scan_results, scan_responses = run_deployment(
            60, executor="serial", num_epochs=3
        )
        monkeypatch.setenv("SQLDB_FORCE_SCAN", "0")
        executor = "process" if label == "process-resident" else label
        _, results, responses = run_deployment(
            60, executor=executor, num_epochs=3, **kwargs
        )
        assert serialize_responses(responses) == serialize_responses(scan_responses)
        assert serialize_results(results) == serialize_results(scan_results)
