"""The remote TCP transport: sealed envelopes, hostile bytes, recovery.

Two properties carry the whole module:

1. **Nothing unauthenticated reaches pickle.**  The wire-frame payloads are
   pickle, so every byte a worker decodes must first pass the envelope MAC.
   These tests throw truncated frames, tampered MACs, replayed envelopes,
   reflected directions, garbage handshakes and version-mismatched peers at
   both sides and assert each produces a clean rejection — never a hang,
   never a ``pickle.loads`` of attacker bytes.
2. **The transport changes nothing observable.**  A scenario run on remote
   workers must produce digests byte-identical to the serial reference, and
   a worker killed mid-run must recover through the same checkpoint+replay
   path as a dead pinned process.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
import time

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.runtime import (
    RemoteProtocolError,
    RemoteWorkerServer,
    RemoteWorkerTransport,
    RemoteWorkerUnavailable,
    ResidentWorkerError,
    WireError,
    decode_frame,
    decode_shard_ack,
    load_keys,
    parse_address,
    run_scenario,
)
from repro.runtime.remote import (
    DIRECTION_COORDINATOR,
    DIRECTION_WORKER,
    HELLO_MAGIC,
    MAX_FRAME_BYTES,
    _HELLO_FORMAT,
    _hello_mac,
    _recv_exact,
    accept_session,
    derive_session_key,
    initiate_session,
    keys_for_workers,
    open_frame,
    seal_frame,
)
from repro.runtime.scenario import ScenarioSpec

KEY = bytes.fromhex("aa" * 32)
OTHER_KEY = bytes.fromhex("bb" * 32)
PARAMS = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5)


def start_server(key: bytes = KEY, **kwargs) -> RemoteWorkerServer:
    server = RemoteWorkerServer("127.0.0.1", 0, key, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def address_of(server: RemoteWorkerServer) -> str:
    host, port = server.address
    return f"{host}:{port}"


def write_key_file(tmp_path, *keys: bytes, name: str = "workers.keys") -> str:
    path = tmp_path / name
    path.write_text(
        "# coordinator-side keys, one per worker\n"
        + "".join(key.hex() + "\n" for key in keys)
    )
    return str(path)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached within timeout")


class TestAddressesAndKeys:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:7001") == ("127.0.0.1", 7001)
        assert parse_address("worker-3.internal:0") == ("worker-3.internal", 0)

    @pytest.mark.parametrize("bad", ["no-port", ":7001", "host:", "host:banana", "host:70000"])
    def test_parse_address_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_load_keys_skips_comments_and_blanks(self, tmp_path):
        path = write_key_file(tmp_path, KEY, OTHER_KEY)
        assert load_keys(path) == [KEY, OTHER_KEY]

    def test_load_keys_rejects_bad_hex(self, tmp_path):
        path = tmp_path / "bad.keys"
        path.write_text("not-hex-at-all\n")
        with pytest.raises(ValueError, match="not valid hex"):
            load_keys(str(path))

    def test_load_keys_rejects_short_keys(self, tmp_path):
        path = tmp_path / "short.keys"
        path.write_text("deadbeef\n")  # 4 bytes: a typo, not a key
        with pytest.raises(ValueError, match="at least 16"):
            load_keys(str(path))

    def test_load_keys_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.keys"
        path.write_text("# nothing but comments\n\n")
        with pytest.raises(ValueError, match="no keys"):
            load_keys(str(path))

    def test_keys_for_workers_shared_and_per_worker(self):
        assert keys_for_workers([KEY], 3) == [KEY, KEY, KEY]
        assert keys_for_workers([KEY, OTHER_KEY], 2) == [KEY, OTHER_KEY]
        with pytest.raises(ValueError, match="one key per worker"):
            keys_for_workers([KEY, OTHER_KEY], 3)


class TestSealedEnvelope:
    SESSION = derive_session_key(KEY, b"c" * 16, b"w" * 16)

    def seal(self, frame: bytes = b"frame-bytes", sequence: int = 1) -> bytes:
        return seal_frame(self.SESSION, DIRECTION_COORDINATOR, sequence, frame)

    def test_round_trip(self):
        sealed = self.seal()
        assert open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, sealed) == b"frame-bytes"

    def test_tampered_payload_fails_the_mac(self):
        sealed = bytearray(self.seal())
        sealed[20] ^= 0x01  # one bit inside the frame bytes
        with pytest.raises(RemoteProtocolError, match="MAC"):
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, bytes(sealed))

    def test_tampered_mac_fails(self):
        sealed = bytearray(self.seal())
        sealed[-1] ^= 0x80
        with pytest.raises(RemoteProtocolError, match="MAC"):
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, bytes(sealed))

    def test_reflected_direction_rejected(self):
        """A frame echoed back verbatim must not verify in the other direction."""
        sealed = self.seal()
        with pytest.raises(RemoteProtocolError, match="direction"):
            open_frame(self.SESSION, DIRECTION_WORKER, 1, sealed)

    def test_replayed_sequence_rejected(self):
        sealed = self.seal(sequence=1)
        assert open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, sealed)
        with pytest.raises(RemoteProtocolError, match="sequence"):
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 2, sealed)

    def test_cross_session_replay_rejected(self):
        """Same pre-shared key, different handshake nonces → different MAC key."""
        other_session = derive_session_key(KEY, b"c" * 16, b"x" * 16)
        sealed = self.seal()
        with pytest.raises(RemoteProtocolError, match="MAC"):
            open_frame(other_session, DIRECTION_COORDINATOR, 1, sealed)

    def test_truncated_envelope_rejected(self):
        sealed = self.seal()
        with pytest.raises(RemoteProtocolError, match="too short"):
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, sealed[:10])
        with pytest.raises(RemoteProtocolError, match="declares"):
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, sealed[:-4])

    def test_forged_length_hits_the_ceiling(self):
        sealed = bytearray(self.seal())
        struct.pack_into(">I", sealed, 13, MAX_FRAME_BYTES + 1)
        with pytest.raises(RemoteProtocolError, match="ceiling") as exc_info:
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, bytes(sealed))
        assert exc_info.value.declared_length == MAX_FRAME_BYTES + 1

    def test_errors_carry_stream_context(self):
        with pytest.raises(RemoteProtocolError) as exc_info:
            open_frame(self.SESSION, DIRECTION_COORDINATOR, 1, b"abc")
        assert exc_info.value.offset == 3
        assert isinstance(exc_info.value, WireError)


class TestWireErrorContext:
    """Decode errors name the frame kind, declared length and byte offset."""

    def test_truncated_frame_names_the_offset(self):
        with pytest.raises(WireError, match=r"offset=3") as exc_info:
            decode_frame(b"PAW")
        assert exc_info.value.offset == 3
        assert exc_info.value.kind is None

    def test_bad_magic_is_offset_zero(self):
        with pytest.raises(WireError, match="magic") as exc_info:
            decode_frame(b"XXXX" + bytes(6))
        assert exc_info.value.offset == 0

    def test_payload_mismatch_names_kind_and_length(self):
        header = struct.pack(">4sBBI", b"PAWF", 3, 4, 100)  # ShardDelta, 100 bytes
        with pytest.raises(WireError, match=r"kind=ShardDelta\(4\)") as exc_info:
            decode_frame(header + b"only-a-few")
        assert exc_info.value.kind == 4
        assert exc_info.value.declared_length == 100

    def test_garbage_payload_names_the_payload_offset(self):
        header = struct.pack(">4sBBI", b"PAWF", 3, 5, 5)  # ShardAck, 5 bytes
        with pytest.raises(WireError, match="deserialize") as exc_info:
            decode_shard_ack(header + b"junk!")
        assert exc_info.value.offset == 10  # corruption starts at the payload
        assert exc_info.value.kind == 5


def handshake_pair() -> tuple:
    """A connected (coordinator channel, worker channel) pair over socketpair."""
    coordinator_sock, worker_sock = socket.socketpair()
    coordinator_sock.settimeout(5.0)
    worker_sock.settimeout(5.0)
    result: dict = {}

    def worker_side():
        try:
            result["worker"] = accept_session(worker_sock, KEY)
        except BaseException as exc:  # surfaced by the caller
            result["worker_error"] = exc

    thread = threading.Thread(target=worker_side, daemon=True)
    thread.start()
    coordinator = initiate_session(coordinator_sock, KEY)
    thread.join(timeout=5.0)
    if "worker_error" in result:
        raise result["worker_error"]
    return coordinator, result["worker"]


class TestHandshake:
    def test_session_carries_frames_both_ways(self):
        coordinator, worker = handshake_pair()
        try:
            coordinator.send_frame(b"to-worker")
            assert worker.recv_frame() == b"to-worker"
            worker.send_frame(b"to-coordinator")
            assert coordinator.recv_frame() == b"to-coordinator"
        finally:
            coordinator.close()
            worker.close()

    def test_wrong_key_rejected(self):
        coordinator_sock, worker_sock = socket.socketpair()
        coordinator_sock.settimeout(5.0)
        worker_sock.settimeout(5.0)
        errors: list = []

        def worker_side():
            try:
                accept_session(worker_sock, OTHER_KEY)
            except RemoteProtocolError as exc:
                errors.append(exc)

        thread = threading.Thread(target=worker_side, daemon=True)
        thread.start()
        with pytest.raises(RemoteProtocolError):
            initiate_session(coordinator_sock, KEY)
        thread.join(timeout=5.0)
        assert errors and "MAC" in str(errors[0])
        coordinator_sock.close()
        worker_sock.close()

    def test_version_mismatch_rejected(self):
        """A peer stuck below wire v3 cannot carry resident frames."""
        coordinator_sock, worker_sock = socket.socketpair()
        coordinator_sock.settimeout(5.0)
        worker_sock.settimeout(5.0)

        def ancient_worker():
            hello = _recv_exact(worker_sock, struct.calcsize(_HELLO_FORMAT) + 32)
            coordinator_nonce = struct.unpack(_HELLO_FORMAT, hello[:-32])[3]
            reply = struct.pack(
                _HELLO_FORMAT, HELLO_MAGIC, DIRECTION_WORKER, 2, b"n" * 16
            )
            worker_sock.sendall(reply + _hello_mac(KEY, reply, coordinator_nonce))

        thread = threading.Thread(target=ancient_worker, daemon=True)
        thread.start()
        with pytest.raises(RemoteProtocolError, match="requires >= 3"):
            initiate_session(coordinator_sock, KEY)
        thread.join(timeout=5.0)
        coordinator_sock.close()
        worker_sock.close()

    def test_role_confusion_rejected(self):
        """A peer claiming the coordinator role cannot pose as a worker."""
        coordinator_sock, worker_sock = socket.socketpair()
        coordinator_sock.settimeout(5.0)
        worker_sock.settimeout(5.0)

        def confused_worker():
            hello = _recv_exact(worker_sock, struct.calcsize(_HELLO_FORMAT) + 32)
            coordinator_nonce = struct.unpack(_HELLO_FORMAT, hello[:-32])[3]
            reply = struct.pack(
                _HELLO_FORMAT, HELLO_MAGIC, DIRECTION_COORDINATOR, 3, b"n" * 16
            )
            worker_sock.sendall(reply + _hello_mac(KEY, reply, coordinator_nonce))

        thread = threading.Thread(target=confused_worker, daemon=True)
        thread.start()
        with pytest.raises(RemoteProtocolError, match="role"):
            initiate_session(coordinator_sock, KEY)
        thread.join(timeout=5.0)
        coordinator_sock.close()
        worker_sock.close()


class TestWorkerServerHostileBytes:
    """Hostile connections are rejected; the server keeps serving."""

    def test_garbage_handshake_rejected_and_server_survives(self):
        server = start_server()
        try:
            with socket.create_connection(server.address, timeout=5.0) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\n\r\n" * 8)
            wait_until(lambda: server.rejected_connections == 1)
            # A legitimate session still works afterwards.
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.settimeout(5.0)
            channel = initiate_session(sock, KEY)
            channel.send_frame(b"not-a-wire-frame")
            ack = decode_shard_ack(channel.recv_frame())
            assert ack.error is not None  # decode failed, but as a clean ack
            channel.close()
            wait_until(lambda: server.sessions_served == 1)
        finally:
            server.stop()

    def test_wrong_key_connection_rejected(self):
        server = start_server()
        try:
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.settimeout(5.0)
            with pytest.raises((RemoteProtocolError, OSError)):
                initiate_session(sock, OTHER_KEY)
            sock.close()
            wait_until(lambda: server.rejected_connections == 1)
        finally:
            server.stop()

    def test_truncated_frame_fails_the_session_not_the_server(self):
        server = start_server()
        try:
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.settimeout(5.0)
            channel = initiate_session(sock, KEY)
            sealed = seal_frame(channel._session_key, DIRECTION_COORDINATOR, 1, b"x" * 64)
            sock.sendall(sealed[: len(sealed) // 2])  # half an envelope, then EOF
            channel.close()
            wait_until(lambda: server.failed_sessions == 1)
            assert server.frames_served == 0  # the bytes never reached decode
        finally:
            server.stop()

    def test_bad_mac_frame_fails_the_session(self):
        server = start_server()
        try:
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.settimeout(5.0)
            channel = initiate_session(sock, KEY)
            sealed = bytearray(
                seal_frame(channel._session_key, DIRECTION_COORDINATOR, 1, b"y" * 32)
            )
            sealed[-5] ^= 0xFF
            sock.sendall(bytes(sealed))
            wait_until(lambda: server.failed_sessions == 1)
            assert server.frames_served == 0
            channel.close()
        finally:
            server.stop()

    def test_replayed_envelope_fails_the_session(self):
        server = start_server()
        try:
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.settimeout(5.0)
            channel = initiate_session(sock, KEY)
            sealed = seal_frame(channel._session_key, DIRECTION_COORDINATOR, 1, b"z" * 16)
            sock.sendall(sealed)
            channel.recv_frame()  # the (error) ack for the first copy
            sock.sendall(sealed)  # verbatim replay: stale sequence number
            wait_until(lambda: server.failed_sessions == 1)
            assert server.frames_served == 1  # the replay never reached decode
            channel.close()
        finally:
            server.stop()


class TestTransport:
    def test_connect_backoff_gives_up_loudly(self):
        # Grab a port with no listener behind it.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        host, port = placeholder.getsockname()
        placeholder.close()
        transport = RemoteWorkerTransport(
            [(host, port)], [KEY], connect_attempts=2, backoff_base_seconds=0.01
        )
        with pytest.raises(RemoteWorkerUnavailable, match="after 2 attempts"):
            transport.send(0, b"frame")
        assert isinstance(RemoteWorkerUnavailable("x"), ResidentWorkerError)

    def test_sticky_affinity_and_liveness(self):
        servers = [start_server(), start_server()]
        try:
            transport = RemoteWorkerTransport(
                [server.address for server in servers], [KEY, KEY]
            )
            assert transport.slot_for(0) == 0 and transport.slot_for(3) == 1
            transport.ensure_worker(0)
            transport.ensure_worker(1)
            assert transport.worker_alive(0) and transport.worker_alive(1)
            assert transport.dead_slots() == []
            servers[1].stop()
            wait_until(lambda: not transport.worker_alive(1))
            assert transport.dead_slots() == [1]
            transport.close()
        finally:
            for server in servers:
                server.stop()

    def test_send_recv_round_trip(self):
        server = start_server()
        try:
            transport = RemoteWorkerTransport([server.address], [KEY])
            transport.send(0, b"garbage-frame")  # worker answers with an error ack
            ack = decode_shard_ack(transport.recv(timeout=5.0))
            assert ack.error is not None
            transport.drain_stale()
            with pytest.raises(queue.Empty):
                transport.recv(timeout=0.05)
            transport.close()
        finally:
            server.stop()


def make_remote_system(addresses, key_path, num_clients=12, shards=4, checkpoint_every=2):
    config = SystemConfig(
        num_clients=num_clients,
        seed=868,
        executor="process",
        executor_shards=shards,
        executor_checkpoint_every=checkpoint_every,
        executor_remote_workers=tuple(addresses),
        executor_key_file=key_path,
    )
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("remote-e2e")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
    return system, query.query_id


def run_serial_twin(num_clients: int, num_epochs: int) -> list:
    config = SystemConfig(num_clients=num_clients, seed=868, executor="serial")
    system = PrivApproxSystem(config)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": float(i % 8)}])
    analyst = Analyst("remote-e2e")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=PARAMS)
    for epoch in range(num_epochs):
        system.run_epoch(query.query_id, epoch)
    out = serialize_responses(system.responses_log(query.query_id))
    system.close()
    return out


def serialize_responses(responses) -> list[tuple]:
    return [
        (
            r.client_id,
            r.epoch,
            r.truthful_bits,
            r.randomized_bits,
            tuple(share.payload for share in r.encrypted.shares),
        )
        for r in responses
    ]


class TestRemoteEndToEnd:
    def test_scenario_digest_matches_serial(self, tmp_path):
        """The acceptance gate: remote digests byte-identical to serial."""
        servers = [start_server(), start_server()]
        try:
            key_path = write_key_file(tmp_path, KEY)
            spec = ScenarioSpec(
                name="remote-grid", seed=4242, num_clients=20, num_epochs=3,
                initial_active_fraction=0.8, join_rate=0.1, leave_rate=0.1,
            )
            serial = run_scenario(spec, executor="serial")
            remote = run_scenario(
                spec,
                executor="process",
                remote_workers=[address_of(server) for server in servers],
                key_file=key_path,
                checkpoint_every=2,
            )
            assert remote.executor_label == "process-remote"
            assert remote.digest == serial.digest
            assert remote.total_wire_bytes > serial.total_wire_bytes
        finally:
            for server in servers:
                server.stop()

    def test_torture_row_kitchen_sink_matches_serial(self, tmp_path):
        """The hostile scenario row: churn + duplicates + deadline, remotely."""
        from repro.runtime.scenario import find_scenario

        servers = [start_server(), start_server()]
        try:
            key_path = write_key_file(tmp_path, KEY)
            spec = find_scenario("kitchen-sink")
            serial = run_scenario(spec, executor="serial")
            remote = run_scenario(
                spec,
                executor="process",
                remote_workers=[address_of(server) for server in servers],
                key_file=key_path,
                checkpoint_every=2,
            )
            assert remote.digest == serial.digest
        finally:
            for server in servers:
                server.stop()

    def test_killed_worker_recovers_byte_identically(self, tmp_path):
        """A worker restart between epochs recovers via checkpoint+replay."""
        servers = [start_server(), start_server()]
        replacement = None
        key_path = write_key_file(tmp_path, KEY)
        system, query_id = make_remote_system(
            [address_of(server) for server in servers], key_path
        )
        try:
            executor = system.executor
            executor.adaptive = False  # pin boundaries; moves have their own test
            system.run_epoch(query_id, 0)
            system.run_epoch(query_id, 1)
            bootstraps_before = executor.bootstrap_frames
            # Kill worker 0 (its process dies: resident cache and connection
            # both gone) and launch a replacement on the same port.
            victim_port = servers[0].address[1]
            servers[0].stop()
            wait_until(lambda: not executor._router.worker_alive(0))
            replacement = RemoteWorkerServer("127.0.0.1", victim_port, KEY)
            threading.Thread(target=replacement.serve_forever, daemon=True).start()
            system.run_epoch(query_id, 2)
            system.run_epoch(query_id, 3)
            # Exactly the dead worker's shards re-bootstrapped (2 of 4).
            assert executor.bootstrap_frames == bootstraps_before + 2
            assert executor._router.reconnects == 1
            remote = serialize_responses(system.responses_log(query_id))
        finally:
            system.close()
            for server in servers:
                server.stop()
            if replacement is not None:
                replacement.stop()
        assert run_serial_twin(12, 4) == remote

    def test_mid_epoch_disconnect_raises_cleanly(self, tmp_path):
        """A socket dying with frames in flight fails the epoch, never hangs."""
        key_path = write_key_file(tmp_path, KEY)
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]

        def evil_worker():
            conn, _ = listener.accept()
            conn.settimeout(5.0)
            channel = accept_session(conn, KEY)
            channel.recv_frame()  # swallow the first bootstrap frame...
            channel.close()  # ...and die without acking

        thread = threading.Thread(target=evil_worker, daemon=True)
        thread.start()
        system, query_id = make_remote_system([f"{host}:{port}"], key_path, shards=2)
        try:
            # Depending on when the death is noticed, the epoch fails in the
            # collector ("died mid-epoch") or in the sender (reconnect
            # exhausted) — both are ResidentWorkerError, neither is a hang.
            with pytest.raises(ResidentWorkerError, match="died mid-epoch|unreachable"):
                system.run_epoch(query_id, 0)
        finally:
            system.close()
            listener.close()
        thread.join(timeout=5.0)

    def test_reconnect_after_connection_drop_keeps_bytes_identical(self, tmp_path):
        """Connection loss without worker death: reconnect + re-bootstrap."""
        server = start_server()
        key_path = write_key_file(tmp_path, KEY)
        system, query_id = make_remote_system([address_of(server)], key_path, shards=2)
        try:
            executor = system.executor
            executor.adaptive = False
            system.run_epoch(query_id, 0)
            # Drop the TCP connection out from under the transport; the
            # worker process (and its resident cache) stays up.
            executor._router._links[0].channel.sock.shutdown(socket.SHUT_RDWR)
            wait_until(lambda: not executor._router.worker_alive(0))
            system.run_epoch(query_id, 1)
            system.run_epoch(query_id, 2)
            assert executor._router.reconnects == 1
            remote = serialize_responses(system.responses_log(query_id))
        finally:
            system.close()
            server.stop()
        assert run_serial_twin(12, 3) == remote


class TestResidentCachePersistence:
    def test_cache_survives_coordinator_sessions(self):
        """A reconnecting coordinator finds the resident shards still warm."""
        server = start_server()
        try:
            transport = RemoteWorkerTransport([server.address], [KEY])
            from repro.runtime.wire import ShardBootstrap, encode_shard_bootstrap
            from repro.core.client import Client, ClientConfig

            client = Client(
                ClientConfig(client_id="cache-0", num_proxies=2, seed=77)
            )
            client.create_table([("value", "REAL")])
            frame = encode_shard_bootstrap(
                ShardBootstrap(
                    shard_index=0, epoch=0, query_ids=(),
                    client_states=(client.export_state(),),
                )
            )
            transport.send(0, frame)
            ack = decode_shard_ack(transport.recv(timeout=5.0))
            assert ack.error is None
            transport.close()
            wait_until(lambda: server.sessions_served == 1)
            assert server.resident_shards == 1  # survives the session
        finally:
            server.stop()
