"""The wire format: framed shard tasks/batches and client state snapshots.

The process-pool runtime is only correct if (a) a client restored from its
snapshot continues the *exact* random streams of the original and (b) the
framing rejects foreign, truncated or version-drifted bytes instead of
feeding garbage to a worker.  Both properties are pinned here, independently
of any executor.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    RangeBuckets,
)
from repro.core.client import Client, ClientConfig
from repro.crypto.prng import KeystreamGenerator
from repro.pubsub import payload_size
from repro.runtime import (
    ShardBatch,
    ShardTask,
    WireError,
    decode_shard_batch,
    decode_shard_task,
    encode_shard_batch,
    encode_shard_task,
)

PARAMS = ExecutionParameters(sampling_fraction=0.8, p=0.9, q=0.5)


def make_query():
    return Analyst("wire").create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )


def make_client(seed: int = 4242) -> Client:
    client = Client(ClientConfig(client_id=f"wire-{seed}", num_proxies=2, seed=seed))
    client.create_table([("value", "REAL")])
    client.ingest([{"value": 3.5}, {"value": 6.25}])
    client.subscribe(make_query(), PARAMS)
    return client


class TestKeystreamState:
    def test_restored_stream_resumes_mid_stream(self):
        original = KeystreamGenerator(seed=b"wire-state")
        original.next_bytes(100)  # advance past a few blocks
        clone = KeystreamGenerator(seed=b"other")
        clone.setstate(original.getstate())
        assert clone.next_bytes(64) == original.next_bytes(64)

    def test_setstate_validates(self):
        generator = KeystreamGenerator(seed=b"x")
        with pytest.raises(TypeError):
            generator.setstate(("not-bytes", 0, b""))
        with pytest.raises(ValueError):
            generator.setstate((b"seed", -1, b""))
        with pytest.raises(TypeError):
            generator.setstate((b"seed", 0, "not-bytes"))


class TestClientSnapshot:
    def test_restored_client_continues_identically(self):
        """Answer → snapshot → answer must equal answer → answer."""
        reference = make_client()
        traveller = make_client()
        query_id = reference.subscribed_query_ids[0]
        # Epoch 0 on both, identically seeded.
        ref0 = reference.answer_query(query_id, epoch=0)
        trav0 = traveller.answer_query(query_id, epoch=0)
        assert (ref0 is None) == (trav0 is None)
        # Round-trip the traveller through its snapshot (as a worker would).
        traveller = Client.from_state(pickle.loads(pickle.dumps(traveller.export_state())))
        for epoch in (1, 2, 3):
            ref = reference.answer_query(query_id, epoch=epoch)
            trav = traveller.answer_query(query_id, epoch=epoch)
            if ref is None:
                assert trav is None
                continue
            assert trav is not None
            assert trav.truthful_bits == ref.truthful_bits
            assert trav.randomized_bits == ref.randomized_bits
            assert [s.payload for s in trav.encrypted.shares] == [
                s.payload for s in ref.encrypted.shares
            ]

    def test_snapshot_preserves_local_data_and_subscriptions(self):
        client = make_client()
        restored = Client.from_state(client.export_state())
        assert restored.local_row_count() == client.local_row_count()
        assert restored.subscribed_query_ids == client.subscribed_query_ids
        assert restored.config == client.config


class TestFraming:
    def make_task(self) -> ShardTask:
        client = make_client()
        return ShardTask(
            shard_index=3,
            epoch=7,
            query_ids=(client.subscribed_query_ids[0],),
            client_states=(client.export_state(),),
        )

    def make_batch(self) -> ShardBatch:
        client = make_client(seed=7)
        query_id = client.subscribed_query_ids[0]
        responses = []
        for epoch in range(6):  # collect a couple of participating epochs
            response = client.answer_query(query_id, epoch=epoch)
            if response is not None:
                responses.append(response)
        return ShardBatch(
            shard_index=1,
            epoch=5,
            wall_seconds=0.25,
            responses=(tuple(responses),),
            client_states=(client.export_state(),),
        )

    def test_task_round_trip(self):
        task = self.make_task()
        decoded = decode_shard_task(encode_shard_task(task))
        assert decoded.shard_index == task.shard_index
        assert decoded.epoch == task.epoch
        assert decoded.query_ids == task.query_ids
        assert decoded.num_clients == 1
        assert decoded.num_queries == 1

    def test_batch_round_trip(self):
        batch = self.make_batch()
        decoded = decode_shard_batch(encode_shard_batch(batch))
        assert decoded.responses == batch.responses
        assert decoded.wall_seconds == batch.wall_seconds
        assert decoded.share_rows() == batch.share_rows()

    def test_batch_size_matches_pubsub_sizing(self):
        """A decoded batch and the broker records agree on share byte size."""
        batch = self.make_batch()
        assert batch.size_bytes() == payload_size(batch.share_rows(0))
        assert batch.size_bytes() > 0

    def test_rejects_truncated_frames(self):
        blob = encode_shard_task(self.make_task())
        with pytest.raises(WireError, match="too short"):
            decode_shard_task(blob[:4])
        with pytest.raises(WireError, match="payload bytes"):
            decode_shard_task(blob[:-3])

    def test_rejects_foreign_magic_and_version(self):
        blob = encode_shard_task(self.make_task())
        with pytest.raises(WireError, match="magic"):
            decode_shard_task(b"XXXX" + blob[4:])
        with pytest.raises(WireError, match="version"):
            decode_shard_task(blob[:4] + bytes([99]) + blob[5:])

    def test_rejects_kind_mismatch(self):
        task_blob = encode_shard_task(self.make_task())
        with pytest.raises(WireError, match="kind"):
            decode_shard_batch(task_blob)

    def test_unpicklable_state_raises_wire_error(self):
        task = ShardTask(
            shard_index=0,
            epoch=0,
            query_ids=("q",),
            client_states=(lambda: None,),  # lambdas cannot pickle
        )
        with pytest.raises(WireError, match="serialize"):
            encode_shard_task(task)

    def test_garbage_payload_raises_wire_error(self):
        blob = encode_shard_task(self.make_task())
        header = blob[:10]
        corrupted = header[:6] + len(b"junk!").to_bytes(4, "big") + b"junk!"
        with pytest.raises(WireError, match="deserialize"):
            decode_shard_task(corrupted)
