"""The wire format: framed shard tasks/batches and client state snapshots.

The process-pool runtime is only correct if (a) a client restored from its
snapshot continues the *exact* random streams of the original and (b) the
framing rejects foreign, truncated or version-drifted bytes instead of
feeding garbage to a worker.  Both properties are pinned here, independently
of any executor.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    RangeBuckets,
)
from repro.core.client import Client, ClientConfig
from repro.crypto.prng import KeystreamGenerator
from repro.pubsub import payload_size
from repro.runtime import (
    ClientDelta,
    ShardAck,
    ShardBatch,
    ShardBootstrap,
    ShardDelta,
    ShardTask,
    WireError,
    decode_frame,
    decode_shard_ack,
    decode_shard_batch,
    decode_shard_bootstrap,
    decode_shard_delta,
    decode_shard_task,
    encode_shard_ack,
    encode_shard_batch,
    encode_shard_bootstrap,
    encode_shard_delta,
    encode_shard_task,
)
from repro.runtime.wire import WIRE_VERSION

PARAMS = ExecutionParameters(sampling_fraction=0.8, p=0.9, q=0.5)


def make_query():
    return Analyst("wire").create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )


def make_client(seed: int = 4242) -> Client:
    client = Client(ClientConfig(client_id=f"wire-{seed}", num_proxies=2, seed=seed))
    client.create_table([("value", "REAL")])
    client.ingest([{"value": 3.5}, {"value": 6.25}])
    client.subscribe(make_query(), PARAMS)
    return client


class TestKeystreamState:
    def test_restored_stream_resumes_mid_stream(self):
        original = KeystreamGenerator(seed=b"wire-state")
        original.next_bytes(100)  # advance past a few blocks
        clone = KeystreamGenerator(seed=b"other")
        clone.setstate(original.getstate())
        assert clone.next_bytes(64) == original.next_bytes(64)

    def test_setstate_validates(self):
        generator = KeystreamGenerator(seed=b"x")
        with pytest.raises(TypeError):
            generator.setstate(("not-bytes", 0, b""))
        with pytest.raises(ValueError):
            generator.setstate((b"seed", -1, b""))
        with pytest.raises(TypeError):
            generator.setstate((b"seed", 0, "not-bytes"))


class TestClientSnapshot:
    def test_restored_client_continues_identically(self):
        """Answer → snapshot → answer must equal answer → answer."""
        reference = make_client()
        traveller = make_client()
        query_id = reference.subscribed_query_ids[0]
        # Epoch 0 on both, identically seeded.
        ref0 = reference.answer_query(query_id, epoch=0)
        trav0 = traveller.answer_query(query_id, epoch=0)
        assert (ref0 is None) == (trav0 is None)
        # Round-trip the traveller through its snapshot (as a worker would).
        traveller = Client.from_state(pickle.loads(pickle.dumps(traveller.export_state())))
        for epoch in (1, 2, 3):
            ref = reference.answer_query(query_id, epoch=epoch)
            trav = traveller.answer_query(query_id, epoch=epoch)
            if ref is None:
                assert trav is None
                continue
            assert trav is not None
            assert trav.truthful_bits == ref.truthful_bits
            assert trav.randomized_bits == ref.randomized_bits
            assert [s.payload for s in trav.encrypted.shares] == [
                s.payload for s in ref.encrypted.shares
            ]

    def test_snapshot_preserves_local_data_and_subscriptions(self):
        client = make_client()
        restored = Client.from_state(client.export_state())
        assert restored.local_row_count() == client.local_row_count()
        assert restored.subscribed_query_ids == client.subscribed_query_ids
        assert restored.config == client.config


class TestFraming:
    def make_task(self) -> ShardTask:
        client = make_client()
        return ShardTask(
            shard_index=3,
            epoch=7,
            query_ids=(client.subscribed_query_ids[0],),
            client_states=(client.export_state(),),
        )

    def make_batch(self) -> ShardBatch:
        client = make_client(seed=7)
        query_id = client.subscribed_query_ids[0]
        responses = []
        for epoch in range(6):  # collect a couple of participating epochs
            response = client.answer_query(query_id, epoch=epoch)
            if response is not None:
                responses.append(response)
        return ShardBatch(
            shard_index=1,
            epoch=5,
            wall_seconds=0.25,
            responses=(tuple(responses),),
            client_states=(client.export_state(),),
        )

    def test_task_round_trip(self):
        task = self.make_task()
        decoded = decode_shard_task(encode_shard_task(task))
        assert decoded.shard_index == task.shard_index
        assert decoded.epoch == task.epoch
        assert decoded.query_ids == task.query_ids
        assert decoded.num_clients == 1
        assert decoded.num_queries == 1

    def test_batch_round_trip(self):
        batch = self.make_batch()
        decoded = decode_shard_batch(encode_shard_batch(batch))
        assert decoded.responses == batch.responses
        assert decoded.wall_seconds == batch.wall_seconds
        assert decoded.share_rows() == batch.share_rows()

    def test_batch_size_matches_pubsub_sizing(self):
        """A decoded batch and the broker records agree on share byte size."""
        batch = self.make_batch()
        assert batch.size_bytes() == payload_size(batch.share_rows(0))
        assert batch.size_bytes() > 0

    def test_rejects_truncated_frames(self):
        blob = encode_shard_task(self.make_task())
        with pytest.raises(WireError, match="too short"):
            decode_shard_task(blob[:4])
        with pytest.raises(WireError, match="payload bytes"):
            decode_shard_task(blob[:-3])

    def test_rejects_foreign_magic_and_version(self):
        blob = encode_shard_task(self.make_task())
        with pytest.raises(WireError, match="magic"):
            decode_shard_task(b"XXXX" + blob[4:])
        with pytest.raises(WireError, match="version"):
            decode_shard_task(blob[:4] + bytes([99]) + blob[5:])

    def test_rejects_kind_mismatch(self):
        task_blob = encode_shard_task(self.make_task())
        with pytest.raises(WireError, match="kind"):
            decode_shard_batch(task_blob)

    def test_unpicklable_state_raises_wire_error(self):
        task = ShardTask(
            shard_index=0,
            epoch=0,
            query_ids=("q",),
            client_states=(lambda: None,),  # lambdas cannot pickle
        )
        with pytest.raises(WireError, match="serialize"):
            encode_shard_task(task)

    def test_garbage_payload_raises_wire_error(self):
        blob = encode_shard_task(self.make_task())
        header = blob[:10]
        corrupted = header[:6] + len(b"junk!").to_bytes(4, "big") + b"junk!"
        with pytest.raises(WireError, match="deserialize"):
            decode_shard_task(corrupted)


def make_resident_client(seed: int = 99) -> Client:
    client = make_client(seed=seed)
    client.answer_query(client.subscribed_query_ids[0], epoch=0)  # warm the streams
    return client


class TestWireV3Framing:
    """Round trips and rejection behavior of the resident-state frames."""

    def make_bootstrap(self) -> ShardBootstrap:
        client = make_resident_client()
        return ShardBootstrap(
            shard_index=2,
            epoch=4,
            query_ids=(client.subscribed_query_ids[0],),
            client_states=(client.export_state(),),
        )

    def make_delta(self) -> ShardDelta:
        client = make_resident_client()
        query, params = client.subscriptions[client.subscribed_query_ids[0]]
        return ShardDelta(
            shard_index=2,
            epoch=5,
            query_ids=(query.query_id,),
            deltas=(
                ClientDelta(
                    subscribe=((query, params),),
                    unsubscribe=("gone-query",),
                    append_rows=(("private_data", (("value", "REAL"),), ((1.5,),)),),
                ),
                None,
            ),
            expected_fingerprint=client.state_fingerprint(),
            want_state=True,
        )

    def make_ack(self) -> ShardAck:
        client = make_resident_client(seed=7)
        query_id = client.subscribed_query_ids[0]
        responses = [
            response
            for epoch in range(1, 5)
            if (response := client.answer_query(query_id, epoch=epoch)) is not None
        ]
        return ShardAck(
            shard_index=2,
            epoch=5,
            wall_seconds=0.125,
            responses=(tuple(responses),),
            fingerprint=client.state_fingerprint(),
            client_states=(client.export_state(),),
        )

    def test_bootstrap_round_trip(self):
        bootstrap = self.make_bootstrap()
        decoded = decode_shard_bootstrap(encode_shard_bootstrap(bootstrap))
        assert decoded.shard_index == bootstrap.shard_index
        assert decoded.epoch == bootstrap.epoch
        assert decoded.query_ids == bootstrap.query_ids
        assert decoded.num_clients == 1
        restored = Client.from_state(decoded.client_states[0])
        assert restored.state_fingerprint() == Client.from_state(
            bootstrap.client_states[0]
        ).state_fingerprint()

    def test_delta_round_trip(self):
        delta = self.make_delta()
        decoded = decode_shard_delta(encode_shard_delta(delta))
        assert decoded.expected_fingerprint == delta.expected_fingerprint
        assert decoded.want_state is True
        assert decoded.deltas[1] is None
        assert decoded.deltas[0].unsubscribe == ("gone-query",)
        assert decoded.deltas[0].append_rows == delta.deltas[0].append_rows
        assert not decoded.deltas[0].is_empty()
        assert ClientDelta().is_empty()

    def test_ack_round_trip(self):
        ack = self.make_ack()
        decoded = decode_shard_ack(encode_shard_ack(ack))
        assert decoded.fingerprint == ack.fingerprint
        assert decoded.responses == ack.responses
        assert decoded.share_rows() == ack.share_rows()
        assert decoded.size_bytes() == payload_size(ack.share_rows(0))
        assert decoded.bootstrap_required is False
        assert decoded.error is None

    def test_decode_frame_dispatches_on_kind(self):
        bootstrap_blob = encode_shard_bootstrap(self.make_bootstrap())
        delta_blob = encode_shard_delta(self.make_delta())
        ack_blob = encode_shard_ack(self.make_ack())
        assert isinstance(decode_frame(bootstrap_blob), ShardBootstrap)
        assert isinstance(decode_frame(delta_blob), ShardDelta)
        assert isinstance(decode_frame(ack_blob), ShardAck)

    def test_kind_mismatch_rejected(self):
        delta_blob = encode_shard_delta(self.make_delta())
        with pytest.raises(WireError, match="kind"):
            decode_shard_bootstrap(delta_blob)
        with pytest.raises(WireError, match="kind"):
            decode_shard_ack(delta_blob)

    def test_truncated_and_garbage_frames_raise_not_hang(self):
        blob = encode_shard_delta(self.make_delta())
        with pytest.raises(WireError, match="too short"):
            decode_shard_delta(blob[:3])
        with pytest.raises(WireError, match="payload bytes"):
            decode_shard_delta(blob[:-5])
        header = blob[:6] + len(b"junk!").to_bytes(4, "big") + b"junk!"
        with pytest.raises(WireError, match="deserialize"):
            decode_shard_delta(header)
        with pytest.raises(WireError, match="magic"):
            decode_frame(b"NOPE" + blob[4:])


class TestVersionNegotiation:
    """Frames are emitted at v3; v2 bytes still decode for the v2 kinds."""

    def make_task_blob(self) -> bytes:
        client = make_client()
        return encode_shard_task(
            ShardTask(
                shard_index=0,
                epoch=0,
                query_ids=(client.subscribed_query_ids[0],),
                client_states=(client.export_state(),),
            )
        )

    def test_frames_are_emitted_at_version_3(self):
        blob = self.make_task_blob()
        assert blob[4] == WIRE_VERSION == 3

    def test_version_2_snapshot_frames_still_decode(self):
        blob = self.make_task_blob()
        downgraded = blob[:4] + bytes([2]) + blob[5:]
        decoded = decode_shard_task(downgraded)
        assert decoded.shard_index == 0
        assert isinstance(decode_frame(downgraded), ShardTask)

    def test_version_1_frames_are_rejected(self):
        blob = self.make_task_blob()
        ancient = blob[:4] + bytes([1]) + blob[5:]
        with pytest.raises(WireError, match="version 1"):
            decode_shard_task(ancient)

    def test_future_versions_are_rejected(self):
        blob = self.make_task_blob()
        future = blob[:4] + bytes([9]) + blob[5:]
        with pytest.raises(WireError, match="version 9"):
            decode_shard_task(future)

    def test_resident_kinds_require_version_3(self):
        client = make_resident_client()
        blob = encode_shard_delta(
            ShardDelta(
                shard_index=0,
                epoch=0,
                query_ids=(),
                deltas=(),
                expected_fingerprint=client.state_fingerprint(),
            )
        )
        downgraded = blob[:4] + bytes([2]) + blob[5:]
        with pytest.raises(WireError, match="requires >= 3"):
            decode_shard_delta(downgraded)

    def test_unknown_kind_rejected(self):
        blob = self.make_task_blob()
        mutated = blob[:5] + bytes([77]) + blob[6:]
        with pytest.raises(WireError, match="unknown frame kind"):
            decode_frame(mutated)


class TestStateFingerprint:
    """The cheap digest must move with the streams and nothing else."""

    def test_equal_states_equal_fingerprints(self):
        a, b = make_resident_client(3), make_resident_client(3)
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_answering_changes_the_fingerprint(self):
        client = make_resident_client(3)
        before = client.state_fingerprint()
        client.answer_query(client.subscribed_query_ids[0], epoch=1)
        assert client.state_fingerprint() != before

    def test_restored_snapshot_preserves_the_fingerprint(self):
        client = make_resident_client(3)
        restored = Client.from_state(pickle.loads(pickle.dumps(client.export_state())))
        assert restored.state_fingerprint() == client.state_fingerprint()

    def test_table_appends_do_not_change_the_fingerprint(self):
        """Tables are parent-authoritative: shipped as deltas, not vouched for."""
        client = make_resident_client(3)
        before = client.state_fingerprint()
        client.ingest([{"value": 9.75}])
        assert client.state_fingerprint() == before

    def test_adopt_rng_state_grafts_streams_only(self):
        donor = make_resident_client(3)
        donor.answer_query(donor.subscribed_query_ids[0], epoch=1)
        receiver = make_resident_client(3)
        receiver.ingest([{"value": 4.25}])  # parent-side mutation to preserve
        rows_before = receiver.local_row_count()
        receiver.adopt_rng_state(donor.export_state())
        assert receiver.state_fingerprint() == donor.state_fingerprint()
        assert receiver.local_row_count() == rows_before


class TestClientDeltaApply:
    def test_append_rows_and_resubscribe(self):
        client = make_resident_client(11)
        query, params = client.subscriptions[client.subscribed_query_ids[0]]
        retuned = ExecutionParameters(sampling_fraction=0.5, p=0.8, q=0.4)
        delta = ClientDelta(
            subscribe=((query, retuned),),
            append_rows=(
                ("private_data", (("value", "REAL"),), ((7.5,), (2.25,))),
                ("side_channel", (("reading", "REAL"),), ((1.0,),)),
            ),
        )
        rows_before = client.local_row_count()
        client.apply_delta(delta)
        assert client.local_row_count() == rows_before + 2
        assert client.local_row_count("side_channel") == 1
        assert client.subscriptions[query.query_id][1] == retuned

    def test_unsubscribe(self):
        client = make_resident_client(11)
        query_id = client.subscribed_query_ids[0]
        client.apply_delta(ClientDelta(unsubscribe=(query_id,)))
        assert client.subscribed_query_ids == []
