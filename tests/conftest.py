"""Shared pytest fixtures for the PrivApprox reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG for reproducible tests."""
    return random.Random(1234)


@pytest.fixture
def speed_buckets() -> RangeBuckets:
    """The paper's driving-speed example: 12 buckets on speed."""
    return RangeBuckets(
        boundaries=(0.0, 1.0, 11.0, 21.0, 31.0, 41.0, 51.0, 61.0, 71.0, 81.0, 91.0, 101.0),
        open_ended=True,
    )


@pytest.fixture
def small_system() -> tuple[PrivApproxSystem, Analyst, str]:
    """A tiny provisioned deployment with one submitted query.

    Returns (system, analyst, query_id).  Clients store a single ``speed``
    reading; the query buckets the speed into four ranges.
    """
    config = SystemConfig(num_clients=40, num_proxies=2, seed=99)
    system = PrivApproxSystem(config)
    generator = random.Random(42)

    def data_for_client(index: int):
        return [{"speed": generator.uniform(0.0, 80.0), "location": "San Francisco"}]

    system.provision_clients(
        columns=[("speed", "REAL"), ("location", "TEXT")],
        data_for_client=data_for_client,
    )
    analyst = Analyst(analyst_id="test-analyst")
    query = analyst.create_query(
        sql="SELECT speed FROM private_data WHERE location = 'San Francisco'",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 20.0, 40.0, 60.0), open_ended=True),
            value_column="speed",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    budget = QueryBudget(target_accuracy_loss=0.1, expected_clients=config.num_clients)
    system.submit_query(
        analyst,
        query,
        budget,
        parameters=ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6),
    )
    return system, analyst, query.query_id
