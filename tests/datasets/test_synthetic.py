"""Tests for the generic synthetic answer generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import generate_binary_answers
from repro.datasets.synthetic import generate_bucketed_answers


class TestBinaryAnswers:
    def test_exact_yes_count(self):
        answers = generate_binary_answers(10_000, 0.6, seed=1)
        assert answers.total == 10_000
        assert answers.true_yes == 6_000

    def test_shuffling_is_deterministic_with_seed(self):
        a = generate_binary_answers(100, 0.5, seed=7)
        b = generate_binary_answers(100, 0.5, seed=7)
        assert a.answers == b.answers

    def test_no_shuffle_puts_yes_first(self):
        answers = generate_binary_answers(10, 0.3, shuffle=False)
        assert answers.as_list() == [1, 1, 1, 0, 0, 0, 0, 0, 0, 0]

    def test_extreme_fractions(self):
        assert generate_binary_answers(50, 0.0).true_yes == 0
        assert generate_binary_answers(50, 1.0).true_yes == 50

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            generate_binary_answers(-1, 0.5)
        with pytest.raises(ValueError):
            generate_binary_answers(10, 1.5)

    @given(
        total=st.integers(min_value=0, max_value=5_000),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_yes_count_matches_rounded_fraction(self, total, fraction):
        answers = generate_binary_answers(total, fraction, seed=3)
        assert answers.true_yes == round(total * fraction)
        assert answers.total == total


class TestBucketedAnswers:
    def test_counts_sum_to_total(self):
        indices = generate_bucketed_answers(1_000, [0.5, 0.3, 0.2], seed=1)
        assert len(indices) == 1_000
        assert set(indices) <= {0, 1, 2}

    def test_fractions_respected_exactly(self):
        indices = generate_bucketed_answers(1_000, [0.5, 0.3, 0.2], seed=2)
        counts = [indices.count(i) for i in range(3)]
        assert counts == [500, 300, 200]

    def test_unnormalized_weights_accepted(self):
        indices = generate_bucketed_answers(100, [5, 3, 2], seed=3)
        counts = [indices.count(i) for i in range(3)]
        assert counts == [50, 30, 20]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            generate_bucketed_answers(10, [])
        with pytest.raises(ValueError):
            generate_bucketed_answers(10, [0.0, 0.0])
        with pytest.raises(ValueError):
            generate_bucketed_answers(10, [-1.0, 2.0])
        with pytest.raises(ValueError):
            generate_bucketed_answers(-5, [1.0])
