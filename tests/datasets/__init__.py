"""Tests for repro.datasets."""
