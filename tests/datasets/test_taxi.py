"""Tests for the synthetic NYC-taxi-like workload generator."""

import pytest

from repro.datasets import TAXI_DISTANCE_BUCKETS, TaxiRideGenerator


class TestTaxiBuckets:
    def test_eleven_buckets(self):
        """The case study defines 11 distance buckets."""
        assert TAXI_DISTANCE_BUCKETS.num_buckets == 11

    def test_bucket_boundaries(self):
        assert TAXI_DISTANCE_BUCKETS.bucket_of(0.5) == 0
        assert TAXI_DISTANCE_BUCKETS.bucket_of(9.99) == 9
        assert TAXI_DISTANCE_BUCKETS.bucket_of(25.0) == 10


class TestTaxiRideGenerator:
    def test_deterministic_with_seed(self):
        a = TaxiRideGenerator(seed=5).distances(100)
        b = TaxiRideGenerator(seed=5).distances(100)
        assert a == b

    def test_distances_are_positive(self):
        assert all(d > 0 for d in TaxiRideGenerator(seed=1).distances(1_000))

    def test_first_bucket_fraction_matches_paper(self):
        """Paper: ~33.57% of rides fall into the first distance bucket."""
        generator = TaxiRideGenerator(seed=11)
        indices = generator.bucket_indices(20_000)
        first_bucket = indices.count(0) / len(indices)
        assert 0.28 < first_bucket < 0.40
        # The generating distribution's analytical fraction is close to 1/3.
        assert generator.expected_first_bucket_fraction() == pytest.approx(0.336, abs=0.03)

    def test_distance_distribution_is_right_skewed(self):
        distances = TaxiRideGenerator(seed=3).distances(10_000)
        mean = sum(distances) / len(distances)
        median = sorted(distances)[len(distances) // 2]
        assert mean > median

    def test_ride_record_schema(self):
        generator = TaxiRideGenerator(seed=7)
        ride = generator.ride(taxi_index=3, timestamp=100.0)
        expected_columns = {name for name, _ in TaxiRideGenerator.table_columns()}
        assert set(ride) == expected_columns
        assert ride["city"] == "New York"
        assert ride["pickup_time"] == 100.0

    def test_rides_for_client(self):
        generator = TaxiRideGenerator(seed=9)
        rides = generator.rides_for_client(taxi_index=1, num_rides=5, start_time=0.0, interval=60.0)
        assert len(rides) == 5
        assert [r["pickup_time"] for r in rides] == [0.0, 60.0, 120.0, 180.0, 240.0]
        assert all(r["taxi_id"] == "taxi-00001" for r in rides)

    def test_rides_for_client_invalid_count(self):
        with pytest.raises(ValueError):
            TaxiRideGenerator(seed=1).rides_for_client(0, num_rides=-1)

    def test_case_study_sql_references_table_columns(self):
        sql = TaxiRideGenerator.case_study_sql()
        assert "distance" in sql
        assert "private_data" in sql

    def test_fare_correlates_with_distance(self):
        generator = TaxiRideGenerator(seed=13)
        rides = [generator.ride(0, 0.0) for _ in range(500)]
        short = [r["fare"] for r in rides if r["distance"] < 1.0]
        long = [r["fare"] for r in rides if r["distance"] > 5.0]
        assert long and short
        assert sum(long) / len(long) > sum(short) / len(short)
