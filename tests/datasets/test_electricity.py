"""Tests for the synthetic household electricity workload generator."""

import pytest

from repro.datasets import ELECTRICITY_BUCKETS, ElectricityGenerator


class TestElectricityBuckets:
    def test_bucket_layout(self):
        """Six half-kWh buckets between 0 and 3 kWh, plus the catch-all tail."""
        assert ELECTRICITY_BUCKETS.num_buckets == 7
        assert ELECTRICITY_BUCKETS.bucket_of(0.2) == 0
        assert ELECTRICITY_BUCKETS.bucket_of(1.4) == 2
        assert ELECTRICITY_BUCKETS.bucket_of(2.9) == 5
        assert ELECTRICITY_BUCKETS.bucket_of(4.0) == 6


class TestElectricityGenerator:
    def test_deterministic_with_seed(self):
        assert ElectricityGenerator(seed=5).readings(50) == ElectricityGenerator(seed=5).readings(50)

    def test_readings_are_non_negative_and_bounded(self):
        readings = ElectricityGenerator(seed=1).readings(5_000)
        assert all(0.0 <= r <= 5.0 for r in readings)

    def test_distribution_is_skewed_toward_low_consumption(self):
        """Most half-hour intervals draw little power."""
        generator = ElectricityGenerator(seed=3)
        indices = generator.bucket_indices(10_000)
        low = sum(1 for i in indices if i <= 1) / len(indices)
        assert low > 0.5

    def test_reading_record_schema(self):
        generator = ElectricityGenerator(seed=7)
        reading = generator.reading(household_index=2, timestamp=1800.0)
        expected_columns = {name for name, _ in ElectricityGenerator.table_columns()}
        assert set(reading) == expected_columns
        assert reading["region"] == "metro"

    def test_readings_for_client_timestamps(self):
        generator = ElectricityGenerator(seed=9)
        readings = generator.readings_for_client(0, num_readings=3, start_time=0.0, interval=1800.0)
        assert [r["reading_time"] for r in readings] == [0.0, 1800.0, 3600.0]

    def test_readings_for_client_invalid_count(self):
        with pytest.raises(ValueError):
            ElectricityGenerator(seed=1).readings_for_client(0, num_readings=-1)

    def test_case_study_sql_references_table_columns(self):
        sql = ElectricityGenerator.case_study_sql()
        assert "kwh" in sql
        assert "private_data" in sql

    def test_smaller_answer_vector_than_taxi(self):
        """The electricity answers use fewer buckets than the taxi answers,
        which is why its proxies see smaller messages (Section 7.2 #I)."""
        from repro.datasets import TAXI_DISTANCE_BUCKETS

        assert ELECTRICITY_BUCKETS.num_buckets < TAXI_DISTANCE_BUCKETS.num_buckets
