"""Tests for repro.streaming."""
