"""Tests for event-time window assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.streaming import SlidingWindowAssigner, TumblingWindowAssigner, Window


class TestWindow:
    def test_contains_is_half_open(self):
        window = Window(start=0.0, end=10.0)
        assert window.contains(0.0)
        assert window.contains(9.999)
        assert not window.contains(10.0)
        assert not window.contains(-0.1)

    def test_length(self):
        assert Window(start=5.0, end=15.0).length == 10.0

    def test_ordering(self):
        assert Window(0.0, 10.0) < Window(5.0, 15.0)


class TestSlidingWindowAssigner:
    def test_tumbling_case_assigns_single_window(self):
        assigner = SlidingWindowAssigner(window_length=60.0, slide_interval=60.0)
        windows = assigner.assign(75.0)
        assert windows == [Window(start=60.0, end=120.0)]

    def test_overlapping_windows(self):
        # 10-minute window sliding every minute: each timestamp is in 10 windows.
        assigner = SlidingWindowAssigner(window_length=600.0, slide_interval=60.0)
        windows = assigner.assign(1234.0)
        assert len(windows) == 10
        assert all(w.contains(1234.0) for w in windows)
        # Windows are consecutive slides.
        starts = [w.start for w in windows]
        assert starts == sorted(starts)
        assert starts[1] - starts[0] == 60.0

    def test_timestamp_zero(self):
        assigner = SlidingWindowAssigner(window_length=120.0, slide_interval=60.0)
        windows = assigner.assign(0.0)
        assert Window(start=0.0, end=120.0) in windows

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowAssigner(window_length=0, slide_interval=1)
        with pytest.raises(ValueError):
            SlidingWindowAssigner(window_length=10, slide_interval=0)
        with pytest.raises(ValueError):
            SlidingWindowAssigner(window_length=10, slide_interval=20)

    def test_windows_between(self):
        assigner = SlidingWindowAssigner(window_length=100.0, slide_interval=50.0)
        windows = assigner.windows_between(0.0, 200.0)
        assert [w.start for w in windows] == [0.0, 50.0, 100.0, 150.0]

    def test_windows_between_rejects_reversed_range(self):
        assigner = SlidingWindowAssigner(window_length=100.0, slide_interval=50.0)
        with pytest.raises(ValueError):
            assigner.windows_between(100.0, 0.0)

    @given(
        timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        window_length=st.integers(min_value=1, max_value=1000),
        slide_divisor=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_assigned_window_contains_the_timestamp(
        self, timestamp, window_length, slide_divisor
    ):
        slide = max(1, window_length // slide_divisor)
        assigner = SlidingWindowAssigner(window_length=float(window_length), slide_interval=float(slide))
        windows = assigner.assign(timestamp)
        assert windows, "every timestamp belongs to at least one window"
        assert all(w.contains(timestamp) for w in windows)
        # The number of covering windows is ceil(length / slide) or one fewer at edges.
        assert len(windows) <= -(-window_length // slide)

    def test_fractional_slide_matches_windows_between_exactly(self):
        """Window starts must not drift for non-representable slides.

        0.1 has no exact binary representation, so building starts by
        repeated subtraction (``start -= slide``) accumulates rounding error
        and eventually keys the same logical window with a float that
        differs in the last ulp from the multiplication form used by
        ``windows_between`` — splitting one window's state in two.  Starts
        must therefore be computed as ``index * slide`` on both paths.
        """
        assigner = SlidingWindowAssigner(window_length=0.5, slide_interval=0.1)
        reference = {w.start for w in assigner.windows_between(0.0, 100.0)}
        for k in range(1000):
            timestamp = k * 0.1
            for window in assigner.assign(timestamp):
                if 0.0 <= window.start < 100.0:
                    assert window.start in reference, (
                        f"assign() start {window.start!r} at t={timestamp!r} "
                        "does not equal any windows_between() start bit-for-bit"
                    )

    def test_fractional_slide_assigns_full_coverage(self):
        """Every timestamp is covered by exactly ceil(w / slide) interior windows."""
        assigner = SlidingWindowAssigner(window_length=0.5, slide_interval=0.1)
        for k in range(5, 500):
            windows = assigner.assign(k * 0.1)
            assert 4 <= len(windows) <= 5
            assert all(w.contains(k * 0.1) for w in windows)


class TestTumblingWindowAssigner:
    def test_assigns_exactly_one_window(self):
        assigner = TumblingWindowAssigner(window_length=30.0)
        assert assigner.assign(65.0) == [Window(start=60.0, end=90.0)]

    def test_as_sliding_equivalent(self):
        tumbling = TumblingWindowAssigner(window_length=30.0)
        sliding = tumbling.as_sliding()
        for timestamp in (0.0, 29.9, 30.0, 61.0, 1234.5):
            assert tumbling.assign(timestamp) == sliding.assign(timestamp)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            TumblingWindowAssigner(window_length=0)
