"""Tests for pipeline assembly and epoch-by-epoch execution."""

from repro.streaming import SlidingWindowAssigner, StreamPipeline, StreamSource


class TestStreamSource:
    def test_default_timestamps_are_sequential(self):
        records = StreamSource().to_records(["a", "b", "c"])
        assert [r.timestamp for r in records] == [0.0, 1.0, 2.0]

    def test_timestamp_extractor(self):
        source = StreamSource(timestamp_fn=lambda v: v["ts"])
        records = source.to_records([{"ts": 5.0}, {"ts": 9.0}])
        assert [r.timestamp for r in records] == [5.0, 9.0]


class TestStreamPipeline:
    def test_map_filter_chain(self):
        pipeline = StreamPipeline().map(lambda x: x * 10).filter(lambda x: x >= 20)
        out = pipeline.run_epoch([1, 2, 3])
        assert [r.value for r in out] == [20, 30]

    def test_flat_map(self):
        pipeline = StreamPipeline().flat_map(lambda x: list(range(x)))
        out = pipeline.run_epoch([3])
        assert [r.value for r in out] == [0, 1, 2]

    def test_windowed_word_count_style(self):
        source = StreamSource(timestamp_fn=lambda v: v[0])
        pipeline = StreamPipeline(source=source)
        pipeline.map(lambda v: v[1])
        pipeline.window_aggregate(
            SlidingWindowAssigner(window_length=10.0, slide_interval=10.0), aggregate_fn=sum
        )
        out = pipeline.run([(0.0, 1), (5.0, 2), (12.0, 5), (13.0, 7)])
        aggregates = {r.value[0].start: r.value[1] for r in out}
        assert aggregates == {0.0: 3, 10.0: 12}

    def test_run_epoch_keeps_window_state(self):
        source = StreamSource(timestamp_fn=lambda v: v[0])
        pipeline = StreamPipeline(source=source).map(lambda v: v[1])
        pipeline.window_aggregate(
            SlidingWindowAssigner(window_length=10.0, slide_interval=10.0), aggregate_fn=sum
        )
        first = pipeline.run_epoch([(0.0, 1), (5.0, 2)])
        assert first == []  # window [0,10) not complete yet
        second = pipeline.run_epoch([(11.0, 4)])
        assert len(second) == 1
        assert second[0].value[1] == 3

    def test_flush_cascades_through_downstream_operators(self):
        source = StreamSource(timestamp_fn=lambda v: v[0])
        pipeline = StreamPipeline(source=source).map(lambda v: v[1])
        pipeline.window_aggregate(
            SlidingWindowAssigner(window_length=10.0, slide_interval=10.0), aggregate_fn=sum
        )
        pipeline.map(lambda pair: pair[1] * 100)
        out = pipeline.run([(0.0, 1), (2.0, 2)])
        assert [r.value for r in out] == [300]

    def test_iter_epochs(self):
        pipeline = StreamPipeline().map(lambda x: x + 1)
        outputs = list(pipeline.iter_epochs([[1], [2, 3]]))
        assert [[r.value for r in batch] for batch in outputs] == [[2], [3, 4]]

    def test_key_by_sets_keys(self):
        pipeline = StreamPipeline().key_by(lambda v: v % 2)
        out = pipeline.run_epoch([1, 2, 3])
        assert [r.key for r in out] == [1, 0, 1]
