"""Tests for the dataflow operators."""

import pytest

from repro.streaming import (
    FilterOperator,
    KeyByOperator,
    KeyedJoinOperator,
    MapOperator,
    SlidingWindowAssigner,
    StreamRecord,
    WindowAggregateOperator,
)
from repro.streaming.operators import FlatMapOperator


def records(values, timestamps=None, keys=None):
    timestamps = timestamps or list(range(len(values)))
    keys = keys or [None] * len(values)
    return [
        StreamRecord(value=v, timestamp=float(t), key=k)
        for v, t, k in zip(values, timestamps, keys)
    ]


class TestBasicOperators:
    def test_map(self):
        out = MapOperator(fn=lambda x: x * 2).process(records([1, 2, 3]))
        assert [r.value for r in out] == [2, 4, 6]

    def test_map_preserves_timestamps(self):
        out = MapOperator(fn=str).process(records([1], timestamps=[42.0]))
        assert out[0].timestamp == 42.0

    def test_filter(self):
        out = FilterOperator(predicate=lambda x: x % 2 == 0).process(records([1, 2, 3, 4]))
        assert [r.value for r in out] == [2, 4]

    def test_flat_map(self):
        out = FlatMapOperator(fn=lambda x: [x, x]).process(records(["a"]))
        assert [r.value for r in out] == ["a", "a"]

    def test_key_by(self):
        out = KeyByOperator(key_fn=lambda x: x["id"]).process(records([{"id": "k1"}]))
        assert out[0].key == "k1"


class TestKeyedJoinOperator:
    def test_join_fires_when_all_shares_arrive(self):
        join = KeyedJoinOperator(expected_per_key=2)
        first = join.process(records(["share-a"], keys=["m1"]))
        assert first == []
        assert join.pending_keys() == 1
        second = join.process(records(["share-b"], keys=["m1"]))
        assert len(second) == 1
        assert second[0].value == ["share-a", "share-b"]
        assert join.pending_keys() == 0

    def test_join_keeps_streams_separate_by_key(self):
        join = KeyedJoinOperator(expected_per_key=2)
        out = join.process(records(["a1", "b1", "a2"], keys=["a", "b", "a"]))
        assert len(out) == 1
        assert out[0].key == "a"

    def test_join_with_three_shares(self):
        join = KeyedJoinOperator(expected_per_key=3)
        out = join.process(records(["x", "y"], keys=["m", "m"]))
        assert out == []
        out = join.process(records(["z"], keys=["m"]))
        assert out[0].value == ["x", "y", "z"]

    def test_join_timestamp_is_max_of_parts(self):
        join = KeyedJoinOperator(expected_per_key=2)
        out = join.process(records(["a", "b"], timestamps=[1.0, 9.0], keys=["m", "m"]))
        assert out[0].timestamp == 9.0

    def test_join_state_survives_across_batches(self):
        join = KeyedJoinOperator(expected_per_key=2)
        join.process(records(["early"], keys=["m"]))
        out = join.process(records(["late"], keys=["m"]))
        assert len(out) == 1

    def test_unkeyed_record_rejected(self):
        with pytest.raises(ValueError):
            KeyedJoinOperator(expected_per_key=2).process(records(["x"]))

    def test_requires_at_least_two_per_key(self):
        with pytest.raises(ValueError):
            KeyedJoinOperator(expected_per_key=1)


class TestWindowAggregateOperator:
    def _operator(self, window=60.0, slide=60.0):
        return WindowAggregateOperator(
            assigner=SlidingWindowAssigner(window_length=window, slide_interval=slide),
            aggregate_fn=sum,
        )

    def test_windows_fire_when_watermark_passes(self):
        op = self._operator()
        # All values in window [0, 60); nothing fires until a later timestamp arrives.
        assert op.process(records([1, 2, 3], timestamps=[0.0, 10.0, 59.0])) == []
        out = op.process(records([10], timestamps=[61.0]))
        assert len(out) == 1
        window, aggregate = out[0].value
        assert (window.start, window.end) == (0.0, 60.0)
        assert aggregate == 6

    def test_flush_emits_pending_windows(self):
        op = self._operator()
        op.process(records([5, 7], timestamps=[0.0, 30.0]))
        out = op.flush()
        assert len(out) == 1
        assert out[0].value[1] == 12
        assert op.pending_windows() == 0

    def test_sliding_windows_count_values_multiple_times(self):
        op = WindowAggregateOperator(
            assigner=SlidingWindowAssigner(window_length=120.0, slide_interval=60.0),
            aggregate_fn=sum,
        )
        op.process(records([1], timestamps=[70.0]))
        out = op.flush()
        # Timestamp 70 belongs to windows [0,120) and [60,180).
        assert len(out) == 2
        assert all(aggregate == 1 for _, aggregate in (r.value for r in out))

    def test_output_timestamp_is_window_end(self):
        op = self._operator()
        op.process(records([1], timestamps=[10.0]))
        out = op.flush()
        assert out[0].timestamp == 60.0

    def test_windows_emitted_in_order(self):
        op = self._operator()
        op.process(records([1, 2, 3], timestamps=[0.0, 70.0, 130.0]))
        out = op.flush()
        ends = [r.timestamp for r in out]
        assert ends == sorted(ends)


class TestLateDataHandling:
    def _operator(self, lateness=0.0):
        return WindowAggregateOperator(
            assigner=SlidingWindowAssigner(window_length=60.0, slide_interval=60.0),
            aggregate_fn=sum,
            allowed_lateness=lateness,
        )

    def test_late_record_for_fired_window_is_dropped(self):
        op = self._operator()
        op.process(records([1], timestamps=[10.0]))
        fired = op.process(records([2], timestamps=[70.0]))
        assert len(fired) == 1 and fired[0].value[1] == 1
        # A record for the already-fired window [0, 60) arrives late.
        late = op.process(records([100], timestamps=[20.0]))
        assert late == []
        assert op.late_records_dropped == 1
        # The fired window is never re-emitted with the late value.
        remaining = op.flush()
        assert all(aggregate != 100 for _, aggregate in (r.value for r in remaining))

    def test_allowed_lateness_keeps_window_open(self):
        op = self._operator(lateness=30.0)
        op.process(records([1], timestamps=[10.0]))
        # Watermark 70 < window end 60 + lateness 30, so the window stays open.
        assert op.process(records([2], timestamps=[70.0])) == []
        # The late record is still accepted into the open window.
        op.process(records([5], timestamps=[20.0]))
        assert op.late_records_dropped == 0
        fired = op.process(records([3], timestamps=[95.0]))
        window_sums = {r.value[0].start: r.value[1] for r in fired}
        assert window_sums[0.0] == 6

    def test_invalid_lateness_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self._operator(lateness=-1.0)

    def test_very_old_record_is_dropped_even_if_window_never_buffered(self):
        op = self._operator()
        op.process(records([1], timestamps=[500.0]))
        op.process(records([9], timestamps=[10.0]))
        assert op.late_records_dropped == 1
        flushed = op.flush()
        assert all(aggregate != 9 for _, aggregate in (r.value for r in flushed))
