"""Tests for aggregator-side answer validation."""

import pytest

from repro.core import AnswerSpec, AnswerValidator, RangeBuckets
from repro.core.query import Query, QueryAnswer


def make_query(num_buckets: int = 3) -> Query:
    boundaries = tuple(float(i) for i in range(num_buckets))
    return Query(
        query_id="analyst-00000001",
        sql="SELECT v FROM private_data",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=boundaries, open_ended=True), value_column="v"
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )


class TestAnswerValidator:
    def test_valid_answer_accepted(self):
        validator = AnswerValidator(make_query())
        answer = QueryAnswer(query_id="analyst-00000001", bits=(0, 1, 0), epoch=3)
        assert validator.validate(answer, arrival_epoch=3).valid
        assert validator.accepted == 1

    def test_wrong_query_id_rejected(self):
        validator = AnswerValidator(make_query())
        answer = QueryAnswer(query_id="other-query", bits=(0, 1, 0), epoch=0)
        result = validator.validate(answer, arrival_epoch=0)
        assert not result.valid
        assert result.reason == "wrong query id"

    def test_wrong_length_rejected(self):
        validator = AnswerValidator(make_query(num_buckets=3))
        answer = QueryAnswer(query_id="analyst-00000001", bits=(0, 1), epoch=0)
        assert validator.validate(answer, arrival_epoch=0).reason == "wrong answer length"

    def test_epoch_drift_rejected(self):
        validator = AnswerValidator(make_query(), max_epoch_drift=1)
        answer = QueryAnswer(query_id="analyst-00000001", bits=(0, 1, 0), epoch=0)
        assert not validator.validate(answer, arrival_epoch=5).valid

    def test_epoch_drift_within_bound_accepted(self):
        validator = AnswerValidator(make_query(), max_epoch_drift=2)
        answer = QueryAnswer(query_id="analyst-00000001", bits=(0, 1, 0), epoch=3)
        assert validator.validate(answer, arrival_epoch=4).valid

    def test_too_many_set_bits_rejected_when_configured(self):
        validator = AnswerValidator(make_query(), max_set_bits=1)
        answer = QueryAnswer(query_id="analyst-00000001", bits=(1, 1, 1), epoch=0)
        assert validator.validate(answer, arrival_epoch=0).reason == "too many set bits"

    def test_multiple_set_bits_allowed_by_default(self):
        validator = AnswerValidator(make_query())
        answer = QueryAnswer(query_id="analyst-00000001", bits=(1, 1, 0), epoch=0)
        assert validator.validate(answer, arrival_epoch=0).valid

    def test_rejection_counters(self):
        validator = AnswerValidator(make_query())
        validator.validate(QueryAnswer(query_id="x", bits=(0, 0, 0)), arrival_epoch=0)
        validator.validate(QueryAnswer(query_id="y", bits=(0, 0, 0)), arrival_epoch=0)
        validator.validate(
            QueryAnswer(query_id="analyst-00000001", bits=(0, 0)), arrival_epoch=0
        )
        assert validator.total_rejected() == 3
        assert validator.rejected_by_reason["wrong query id"] == 2
        assert validator.rejected_by_reason["wrong answer length"] == 1


class TestValidatorInsideAggregator:
    def test_answers_for_other_query_are_filtered(self):
        from repro.core import Aggregator, ExecutionParameters
        from repro.core.encryption import AnswerCodec
        from repro.crypto.prng import KeystreamGenerator

        query = make_query()
        aggregator = Aggregator(
            query=query,
            parameters=ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5),
            total_clients=2,
            validator=AnswerValidator(query),
        )
        codec = AnswerCodec()
        keystream = KeystreamGenerator(seed=b"val")
        good = QueryAnswer(query_id=query.query_id, bits=(1, 0, 0), epoch=0)
        stray = QueryAnswer(query_id="some-other-query", bits=(0, 0, 1), epoch=0)
        shares = list(codec.encrypt(good, num_proxies=2, keystream=keystream).shares)
        shares += list(codec.encrypt(stray, num_proxies=2, keystream=keystream).shares)
        aggregator.ingest_shares(shares, epoch=0)
        result = aggregator.flush()[0]
        assert aggregator.invalid_answers == 1
        assert result.num_answers == 1
        assert result.histogram.estimates()[0] == pytest.approx(2.0)  # scaled 2/1


class TestValidateBatch:
    """validate_batch must mirror per-answer validate() decisions and counters."""

    def _answers(self):
        return [
            QueryAnswer(query_id="analyst-00000001", bits=(0, 1, 0), epoch=3),
            QueryAnswer(query_id="wrong-query", bits=(0, 1, 0), epoch=3),
            QueryAnswer(query_id="analyst-00000001", bits=(0, 1), epoch=3),
            QueryAnswer(query_id="analyst-00000001", bits=(1, 1, 1), epoch=3),
            QueryAnswer(query_id="analyst-00000001", bits=(1, 0, 0), epoch=9),
        ]

    def test_batch_matches_per_answer_reference(self):
        batched = AnswerValidator(make_query())
        reference = AnswerValidator(make_query())
        answers = self._answers()
        verdicts = batched.validate_batch(answers, arrival_epoch=3)
        expected = [reference.validate(a, arrival_epoch=3).valid for a in answers]
        assert verdicts == expected
        assert batched.accepted == reference.accepted
        assert batched.rejected_by_reason == reference.rejected_by_reason

    def test_batch_respects_max_set_bits(self):
        batched = AnswerValidator(make_query(), max_set_bits=1)
        reference = AnswerValidator(make_query(), max_set_bits=1)
        answers = self._answers()
        assert batched.validate_batch(answers, arrival_epoch=3) == [
            reference.validate(a, arrival_epoch=3).valid for a in answers
        ]
        assert batched.rejected_by_reason == reference.rejected_by_reason

    def test_empty_batch(self):
        validator = AnswerValidator(make_query())
        assert validator.validate_batch([], arrival_epoch=0) == []
        assert validator.accepted == 0
