"""Tests for the privacy accounting (Eq. 8, sampling amplification, ZK privacy)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PrivacyAccountant,
    amplify_epsilon_by_sampling,
    randomized_response_epsilon,
    zero_knowledge_epsilon,
)
from repro.core.privacy import (
    epsilon_from_probabilities,
    privapprox_epsilon_for_rappor_mapping,
    rappor_epsilon,
)


class TestRandomizedResponseEpsilon:
    def test_equation_8_value(self):
        # p=0.6, q=0.3: eps = ln((0.6 + 0.4*0.3) / (0.4*0.3)) = ln(6)
        assert randomized_response_epsilon(0.6, 0.3) == pytest.approx(math.log(6.0))

    def test_infinite_epsilon_when_no_noise(self):
        assert randomized_response_epsilon(1.0, 0.5) == float("inf")
        assert randomized_response_epsilon(0.5, 0.0) == float("inf")

    def test_monotone_increasing_in_p(self):
        """Table 1 shape: higher p means weaker privacy (larger epsilon)."""
        eps = [randomized_response_epsilon(p, 0.6) for p in (0.3, 0.6, 0.9)]
        assert eps == sorted(eps)
        assert eps[0] < eps[-1]

    def test_monotone_decreasing_in_q(self):
        """Table 1 shape: larger q means slightly stronger privacy."""
        eps = [randomized_response_epsilon(0.6, q) for q in (0.3, 0.6, 0.9)]
        assert eps == sorted(eps, reverse=True)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            randomized_response_epsilon(-0.1, 0.5)
        with pytest.raises(ValueError):
            randomized_response_epsilon(0.5, 1.1)

    def test_matches_probability_form(self):
        p, q = 0.7, 0.4
        from_probabilities = epsilon_from_probabilities(p + (1 - p) * q, (1 - p) * q)
        assert randomized_response_epsilon(p, q) == pytest.approx(from_probabilities)


class TestSamplingAmplification:
    def test_no_sampling_means_no_amplification(self):
        eps = randomized_response_epsilon(0.6, 0.6)
        assert amplify_epsilon_by_sampling(eps, 1.0) == pytest.approx(eps)

    def test_zero_sampling_means_perfect_privacy(self):
        assert amplify_epsilon_by_sampling(2.0, 0.0) == 0.0

    def test_amplified_epsilon_below_base(self):
        eps = randomized_response_epsilon(0.9, 0.6)
        assert amplify_epsilon_by_sampling(eps, 0.5) < eps

    def test_monotone_in_sampling_fraction(self):
        eps = randomized_response_epsilon(0.9, 0.6)
        levels = [amplify_epsilon_by_sampling(eps, s) for s in (0.1, 0.3, 0.6, 0.9, 1.0)]
        assert levels == sorted(levels)

    def test_infinite_base_stays_infinite(self):
        assert amplify_epsilon_by_sampling(float("inf"), 0.5) == float("inf")

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            amplify_epsilon_by_sampling(1.0, 1.5)

    @given(
        eps=st.floats(min_value=0.01, max_value=10.0),
        s=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_amplification_bounds_property(self, eps, s):
        amplified = amplify_epsilon_by_sampling(eps, s)
        assert 0.0 <= amplified <= eps + 1e-12


class TestZeroKnowledgeEpsilon:
    def test_combines_rr_and_sampling(self):
        zk = zero_knowledge_epsilon(0.9, 0.6, 0.6)
        base = randomized_response_epsilon(0.9, 0.6)
        assert zk == pytest.approx(amplify_epsilon_by_sampling(base, 0.6))
        assert zk < base

    def test_figure7_shape_monotone_in_s_and_p(self):
        """Figure 7(b): epsilon_zk grows with both s and p."""
        for q in (0.3, 0.6, 0.9):
            for p in (0.3, 0.6, 0.9):
                levels = [zero_knowledge_epsilon(p, q, s) for s in (0.1, 0.4, 0.8)]
                assert levels == sorted(levels)
            for s in (0.2, 0.6, 0.9):
                levels = [zero_knowledge_epsilon(p, q, s) for p in (0.3, 0.6, 0.9)]
                assert levels == sorted(levels)


class TestRapporComparison:
    def test_rappor_epsilon_formula(self):
        assert rappor_epsilon(0.5, 1) == pytest.approx(2 * math.log(0.75 / 0.25))

    def test_rappor_invalid_f_rejected(self):
        with pytest.raises(ValueError):
            rappor_epsilon(0.0)
        with pytest.raises(ValueError):
            rappor_epsilon(2.0)

    def test_privapprox_never_weaker_than_rappor_mapping(self):
        """Figure 5(c): PrivApprox's epsilon <= the shared RR epsilon for all s."""
        f = 0.5
        base = randomized_response_epsilon(1.0 - f, 0.5)
        for s in (0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0):
            assert privapprox_epsilon_for_rappor_mapping(f, s) <= base + 1e-12

    def test_privapprox_equals_rappor_at_full_sampling(self):
        f = 0.5
        base = randomized_response_epsilon(1.0 - f, 0.5)
        assert privapprox_epsilon_for_rappor_mapping(f, 1.0) == pytest.approx(base)

    def test_privapprox_epsilon_grows_with_sampling(self):
        f = 0.5
        levels = [privapprox_epsilon_for_rappor_mapping(f, s) for s in (0.1, 0.5, 0.9)]
        assert levels == sorted(levels)


class TestPrivacyAccountant:
    def test_report_fields(self):
        report = PrivacyAccountant().report(0.6, 0.6, 0.8)
        assert report.epsilon_dp == pytest.approx(randomized_response_epsilon(0.6, 0.6))
        assert report.epsilon_zk == pytest.approx(zero_knowledge_epsilon(0.6, 0.6, 0.8))
        assert report.epsilon_zk <= report.epsilon_dp

    def test_satisfies(self):
        accountant = PrivacyAccountant()
        assert accountant.satisfies(0.3, 0.6, 0.5, epsilon_target=1.0)
        assert not accountant.satisfies(0.99, 0.6, 1.0, epsilon_target=0.5)

    def test_max_p_for_target_meets_target(self):
        accountant = PrivacyAccountant()
        target = 1.0
        p = accountant.max_p_for_target(q=0.6, sampling_fraction=0.8, epsilon_target=target)
        assert 0 < p < 1
        assert zero_knowledge_epsilon(p, 0.6, 0.8) <= target
        # Slightly larger p would violate the target.
        assert zero_knowledge_epsilon(min(1.0, p + 0.01), 0.6, 0.8) > target

    def test_max_p_for_target_invalid_target(self):
        with pytest.raises(ValueError):
            PrivacyAccountant().max_p_for_target(0.5, 0.5, epsilon_target=0.0)

    def test_sampling_fraction_for_target(self):
        accountant = PrivacyAccountant()
        s = accountant.sampling_fraction_for_target(p=0.9, q=0.6, epsilon_target=1.5)
        assert 0 < s < 1
        assert zero_knowledge_epsilon(0.9, 0.6, s) == pytest.approx(1.5, abs=1e-6)

    def test_sampling_fraction_full_when_target_loose(self):
        accountant = PrivacyAccountant()
        assert accountant.sampling_fraction_for_target(p=0.3, q=0.9, epsilon_target=10.0) == 1.0
