"""Tests for client-side sampling and the sum estimator (Eqs. 2-4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SimpleRandomSampler, StratifiedSampler, estimate_sum
from repro.core.sampling import (
    minimum_sample_size_for_normality,
    sample_variance,
    t_critical,
)


class TestSampleVariance:
    def test_known_variance(self):
        assert sample_variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(4.571, rel=1e-3)

    def test_constant_values(self):
        assert sample_variance([3.0, 3.0, 3.0]) == 0.0

    def test_fewer_than_two_values(self):
        assert sample_variance([5.0]) == 0.0
        assert sample_variance([]) == 0.0


class TestTCritical:
    def test_matches_normal_for_large_samples(self):
        assert t_critical(10_000, 0.95) == pytest.approx(1.96, abs=0.01)

    def test_wider_for_small_samples(self):
        assert t_critical(5, 0.95) > t_critical(50, 0.95)

    def test_higher_confidence_wider_interval(self):
        assert t_critical(30, 0.99) > t_critical(30, 0.95)

    def test_undefined_for_single_observation(self):
        assert t_critical(1, 0.95) == float("inf")

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            t_critical(30, 1.5)


class TestEstimateSum:
    def test_full_sample_is_exact(self):
        values = [1.0, 2.0, 3.0, 4.0]
        estimate = estimate_sum(values, population_size=4)
        assert estimate.estimate == 10.0
        assert estimate.error_bound == 0.0

    def test_scaling_by_population(self):
        # 50 sampled values of 1.0 from a population of 100 -> estimate 100.
        estimate = estimate_sum([1.0] * 50, population_size=100)
        assert estimate.estimate == pytest.approx(100.0)

    def test_empty_sample(self):
        estimate = estimate_sum([], population_size=100)
        assert estimate.estimate == 0.0
        assert estimate.error_bound == float("inf")

    def test_population_smaller_than_sample_rejected(self):
        with pytest.raises(ValueError):
            estimate_sum([1.0, 2.0], population_size=1)

    def test_confidence_interval_contains_truth_usually(self):
        """Coverage check: the 95% interval should contain the true sum most of the time."""
        rng = random.Random(7)
        population = [rng.uniform(0, 10) for _ in range(2_000)]
        true_sum = sum(population)
        hits = 0
        trials = 100
        for _ in range(trials):
            sample = [v for v in population if rng.random() < 0.3]
            estimate = estimate_sum(sample, population_size=len(population))
            if estimate.contains(true_sum):
                hits += 1
        assert hits >= 85  # 95% nominal coverage, generous slack for randomness

    def test_error_shrinks_with_sample_size(self):
        rng = random.Random(3)
        population = [rng.uniform(0, 10) for _ in range(5_000)]
        small = estimate_sum(population[:100], population_size=5_000)
        large = estimate_sum(population[:2_000], population_size=5_000)
        assert large.error_bound < small.error_bound

    def test_sampling_fraction(self):
        estimate = estimate_sum([1.0] * 25, population_size=100)
        assert estimate.sampling_fraction == 0.25

    @given(
        values=st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=50),
        extra=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimate_scales_linearly_with_population(self, values, extra):
        population = len(values) + extra
        estimate = estimate_sum(values, population_size=population)
        assert estimate.estimate == pytest.approx(population / len(values) * sum(values))


class TestSimpleRandomSampler:
    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SimpleRandomSampler(1.5)

    def test_extreme_fractions(self):
        assert SimpleRandomSampler(1.0).should_participate()
        assert not SimpleRandomSampler(0.0).should_participate()

    def test_participation_rate_close_to_fraction(self):
        sampler = SimpleRandomSampler(0.3, rng=random.Random(11))
        hits = sum(sampler.should_participate() for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_select_subsamples_population(self):
        sampler = SimpleRandomSampler(0.5, rng=random.Random(5))
        population = list(range(10_000))
        sample = sampler.select(population)
        assert 4_000 < len(sample) < 6_000
        assert set(sample) <= set(population)

    def test_expected_sample_size(self):
        assert SimpleRandomSampler(0.25).expected_sample_size(400) == 100.0


class TestStratifiedSampler:
    def test_estimate_close_to_truth_with_skewed_strata(self):
        rng = random.Random(13)
        strata = {
            "heavy": [rng.uniform(50, 100) for _ in range(2_000)],
            "light": [rng.uniform(0, 5) for _ in range(8_000)],
        }
        truth = sum(sum(v) for v in strata.values())
        sampler = StratifiedSampler(0.3, rng=random.Random(17))
        estimate = sampler.estimate(strata)
        assert estimate.estimate == pytest.approx(truth, rel=0.05)
        assert estimate.population_size == 10_000

    def test_stratified_beats_srs_on_skewed_data(self):
        """The technical-report motivation: stratification reduces variance."""
        rng = random.Random(23)
        heavy = [rng.uniform(90, 100) for _ in range(500)]
        light = [rng.uniform(0, 1) for _ in range(9_500)]
        population = heavy + light
        truth = sum(population)

        def srs_error() -> float:
            sampler = SimpleRandomSampler(0.2, rng=rng)
            sample = sampler.select(population)
            return abs(estimate_sum(sample, len(population)).estimate - truth)

        def stratified_error() -> float:
            sampler = StratifiedSampler(0.2, rng=rng)
            return abs(sampler.estimate({"heavy": heavy, "light": light}).estimate - truth)

        srs_mean = sum(srs_error() for _ in range(20)) / 20
        stratified_mean = sum(stratified_error() for _ in range(20)) / 20
        assert stratified_mean < srs_mean

    def test_every_stratum_represented(self):
        sampler = StratifiedSampler(0.05, rng=random.Random(29))
        estimate = sampler.estimate({"tiny": [100.0, 101.0], "big": list(range(1000))})
        # Even the tiny stratum contributes at least one observation.
        assert estimate.sample_size >= 2

    def test_empty_strata_rejected(self):
        with pytest.raises(ValueError):
            StratifiedSampler(0.5).estimate({})

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            StratifiedSampler(0.0)


def test_normality_threshold_is_thirty():
    assert minimum_sample_size_for_normality() == 30
