"""Tests for the end-to-end system wiring."""

import random

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)


class TestSystemConfig:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_clients=0)
        with pytest.raises(ValueError):
            SystemConfig(num_proxies=1)


class TestProvisioning:
    def test_clients_receive_their_own_data(self):
        system = PrivApproxSystem(SystemConfig(num_clients=5, seed=1))
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": float(i)}, {"value": float(i) + 0.1}]
        )
        assert all(client.local_row_count() == 2 for client in system.clients)

    def test_clients_with_no_data(self):
        system = PrivApproxSystem(SystemConfig(num_clients=3, seed=1))
        system.provision_clients([("value", "REAL")], lambda i: [])
        assert all(client.local_row_count() == 0 for client in system.clients)


class TestQuerySubmission:
    def test_submit_subscribes_all_clients(self, small_system):
        system, _, query_id = small_system
        assert all(query_id in c.subscribed_query_ids for c in system.clients)

    def test_explicit_parameters_bypass_planner(self, small_system):
        system, _, query_id = small_system
        params = system.parameters_for(query_id)
        assert params == ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6)

    def test_planner_derives_parameters_from_budget(self):
        system = PrivApproxSystem(SystemConfig(num_clients=10, seed=2))
        system.provision_clients([("value", "REAL")], lambda i: [{"value": 0.5}])
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)),
        )
        params = system.submit_query(analyst, query, QueryBudget(max_epsilon=1.0))
        assert params.epsilon_zk <= 1.0 + 1e-6

    def test_unknown_query_rejected(self, small_system):
        system, _, _ = small_system
        with pytest.raises(KeyError):
            system.run_epoch("missing", 0)
        with pytest.raises(KeyError):
            system.parameters_for("missing")
        with pytest.raises(KeyError):
            system.aggregator_for("missing")


class TestEpochExecution:
    def test_participation_rate_close_to_sampling_fraction(self, small_system):
        system, _, query_id = small_system
        reports = system.run_epochs(query_id, 10)
        mean_rate = sum(r.participation_rate for r in reports) / len(reports)
        assert 0.75 < mean_rate <= 1.0  # s = 0.9

    def test_results_delivered_to_analyst(self, small_system):
        system, analyst, query_id = small_system
        system.run_epochs(query_id, 3)
        system.flush(query_id)
        results = analyst.results_for(query_id)
        assert len(results) >= 3

    def test_estimates_track_ground_truth(self):
        """A moderately sized noiseless-ish deployment recovers the exact histogram."""
        config = SystemConfig(num_clients=400, num_proxies=2, seed=7)
        system = PrivApproxSystem(config)
        rng = random.Random(5)
        system.provision_clients(
            [("speed", "REAL"), ("location", "TEXT")],
            lambda i: [{"speed": rng.uniform(0, 80), "location": "San Francisco"}],
        )
        analyst = Analyst("acme")
        query = analyst.create_query(
            "SELECT speed FROM private_data WHERE location = 'San Francisco'",
            AnswerSpec(
                buckets=RangeBuckets(boundaries=(0.0, 20.0, 40.0, 60.0), open_ended=True),
                value_column="speed",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5),
        )
        system.run_epoch(query.query_id, 0)
        results = system.flush(query.query_id)
        exact = system.exact_bucket_counts(query.query_id)
        assert results[0].histogram.estimates() == pytest.approx(exact, abs=1e-6)

    def test_window_results_have_error_bounds(self, small_system):
        system, _, query_id = small_system
        system.run_epochs(query_id, 2)
        results = system.flush(query_id)
        assert results
        for result in results:
            assert all(b.error_bound >= 0 for b in result.histogram.buckets)

    def test_responses_log_only_contains_participants(self, small_system):
        system, _, query_id = small_system
        report = system.run_epoch(query_id, 0)
        log = system.responses_log(query_id)
        assert len(log) == report.num_participants

    def test_epoch_report_fields(self, small_system):
        system, _, query_id = small_system
        report = system.run_epoch(query_id, 0)
        assert report.epoch == 0
        assert report.num_clients == 40
        assert 0 <= report.num_participants <= 40


class TestMultiQueryEpochs:
    """run_epoch_all: N concurrent queries from one answering pass."""

    def _submit_queries(self, system, num_queries):
        analyst = Analyst("multi")
        query_ids = []
        for index in range(num_queries):
            query = analyst.create_query(
                "SELECT value FROM private_data",
                AnswerSpec(
                    buckets=RangeBuckets.uniform(0.0, 8.0, 4 + index, open_ended=True),
                    value_column="value",
                ),
                frequency_seconds=60.0,
                window_seconds=60.0,
                slide_seconds=60.0,
            )
            system.submit_query(
                analyst,
                query,
                QueryBudget(),
                parameters=ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.5),
            )
            query_ids.append(query.query_id)
        return analyst, query_ids

    def _build(self, num_queries=3, num_clients=20):
        system = PrivApproxSystem(SystemConfig(num_clients=num_clients, seed=21))
        rng = random.Random(21)
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": rng.uniform(0, 8)}]
        )
        analyst, query_ids = self._submit_queries(system, num_queries)
        return system, analyst, query_ids

    def test_one_report_per_query_in_submission_order(self):
        system, _, query_ids = self._build()
        reports = system.run_epoch_all(0)
        assert list(reports) == query_ids
        assert all(report.epoch == 0 for report in reports.values())
        system.close()

    def test_each_query_gets_its_own_responses_and_results(self):
        system, analyst, query_ids = self._build()
        reports = system.run_epoch_all(0)
        for index, query_id in enumerate(query_ids):
            assert len(system.responses_log(query_id)) == (
                reports[query_id].num_participants
            )
            system.flush(query_id)
            results = analyst.results_for(query_id)
            assert results
            # Bucket resolution differs per query (4 + index finite ranges
            # plus the open-ended tail), so a cross-query mix-up could not
            # produce the right histogram width.
            assert len(results[-1].histogram.buckets) == 4 + index + 1
        system.close()

    def test_subset_of_queries(self):
        system, _, query_ids = self._build()
        reports = system.run_epoch_all(0, query_ids[:2])
        assert list(reports) == query_ids[:2]
        assert system.responses_log(query_ids[2]) == []
        system.close()

    def test_unknown_query_rejected(self):
        system, _, _ = self._build(num_queries=1)
        with pytest.raises(KeyError):
            system.run_epoch_all(0, ["missing"])
        system.close()

    def test_duplicate_query_ids_rejected(self):
        """Answering a query twice in one pass would corrupt its RNG streams."""
        system, _, query_ids = self._build(num_queries=2)
        with pytest.raises(ValueError, match="duplicates"):
            system.run_epoch_all(0, [query_ids[0], query_ids[0]])
        system.close()

    def test_no_queries_rejected(self):
        system = PrivApproxSystem(SystemConfig(num_clients=5, seed=1))
        system.provision_clients([("value", "REAL")], lambda i: [{"value": 1.0}])
        with pytest.raises(ValueError):
            system.run_epoch_all(0)
        system.close()

    def test_run_epochs_all_runs_consecutive_epochs(self):
        system, _, query_ids = self._build(num_queries=2)
        rounds = system.run_epochs_all(3)
        assert len(rounds) == 3
        for epoch, reports in enumerate(rounds):
            assert all(report.epoch == epoch for report in reports.values())
        assert all(
            len(system.responses_log(query_id)) > 0 for query_id in query_ids
        )
        system.close()


class TestFeedbackLoop:
    def test_feedback_raises_sampling_when_error_exceeds_budget(self):
        config = SystemConfig(num_clients=30, num_proxies=2, seed=3)
        system = PrivApproxSystem(config)
        rng = random.Random(11)
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": rng.uniform(0, 3)}]
        )
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True)),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        # Tight accuracy target with heavy randomization: the error bound will
        # exceed the target and the feedback loop must raise the sampling rate.
        initial = ExecutionParameters(sampling_fraction=0.4, p=0.3, q=0.6)
        system.submit_query(
            analyst, query, QueryBudget(target_accuracy_loss=0.01), parameters=initial
        )
        system.run_epochs(query.query_id, 4)
        final = system.parameters_for(query.query_id)
        assert final.sampling_fraction > initial.sampling_fraction


class TestHistoricalIntegration:
    def test_historical_store_receives_randomized_answers(self):
        config = SystemConfig(num_clients=20, num_proxies=2, seed=13, keep_historical=True)
        system = PrivApproxSystem(config)
        rng = random.Random(17)
        system.provision_clients([("value", "REAL")], lambda i: [{"value": rng.uniform(0, 2)}])
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5),
        )
        reports = system.run_epochs(query.query_id, 2)
        stored = system.historical_store.stored_answer_count(query.query_id)
        assert stored == sum(r.num_participants for r in reports)
