"""Tests for the end-to-end system wiring."""

import random

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)


class TestSystemConfig:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_clients=0)
        with pytest.raises(ValueError):
            SystemConfig(num_proxies=1)


class TestProvisioning:
    def test_clients_receive_their_own_data(self):
        system = PrivApproxSystem(SystemConfig(num_clients=5, seed=1))
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": float(i)}, {"value": float(i) + 0.1}]
        )
        assert all(client.local_row_count() == 2 for client in system.clients)

    def test_clients_with_no_data(self):
        system = PrivApproxSystem(SystemConfig(num_clients=3, seed=1))
        system.provision_clients([("value", "REAL")], lambda i: [])
        assert all(client.local_row_count() == 0 for client in system.clients)


class TestQuerySubmission:
    def test_submit_subscribes_all_clients(self, small_system):
        system, _, query_id = small_system
        assert all(query_id in c.subscribed_query_ids for c in system.clients)

    def test_explicit_parameters_bypass_planner(self, small_system):
        system, _, query_id = small_system
        params = system.parameters_for(query_id)
        assert params == ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6)

    def test_planner_derives_parameters_from_budget(self):
        system = PrivApproxSystem(SystemConfig(num_clients=10, seed=2))
        system.provision_clients([("value", "REAL")], lambda i: [{"value": 0.5}])
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)),
        )
        params = system.submit_query(analyst, query, QueryBudget(max_epsilon=1.0))
        assert params.epsilon_zk <= 1.0 + 1e-6

    def test_unknown_query_rejected(self, small_system):
        system, _, _ = small_system
        with pytest.raises(KeyError):
            system.run_epoch("missing", 0)
        with pytest.raises(KeyError):
            system.parameters_for("missing")
        with pytest.raises(KeyError):
            system.aggregator_for("missing")


class TestEpochExecution:
    def test_participation_rate_close_to_sampling_fraction(self, small_system):
        system, _, query_id = small_system
        reports = system.run_epochs(query_id, 10)
        mean_rate = sum(r.participation_rate for r in reports) / len(reports)
        assert 0.75 < mean_rate <= 1.0  # s = 0.9

    def test_results_delivered_to_analyst(self, small_system):
        system, analyst, query_id = small_system
        system.run_epochs(query_id, 3)
        system.flush(query_id)
        results = analyst.results_for(query_id)
        assert len(results) >= 3

    def test_estimates_track_ground_truth(self):
        """A moderately sized noiseless-ish deployment recovers the exact histogram."""
        config = SystemConfig(num_clients=400, num_proxies=2, seed=7)
        system = PrivApproxSystem(config)
        rng = random.Random(5)
        system.provision_clients(
            [("speed", "REAL"), ("location", "TEXT")],
            lambda i: [{"speed": rng.uniform(0, 80), "location": "San Francisco"}],
        )
        analyst = Analyst("acme")
        query = analyst.create_query(
            "SELECT speed FROM private_data WHERE location = 'San Francisco'",
            AnswerSpec(
                buckets=RangeBuckets(boundaries=(0.0, 20.0, 40.0, 60.0), open_ended=True),
                value_column="speed",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5),
        )
        system.run_epoch(query.query_id, 0)
        results = system.flush(query.query_id)
        exact = system.exact_bucket_counts(query.query_id)
        assert results[0].histogram.estimates() == pytest.approx(exact, abs=1e-6)

    def test_window_results_have_error_bounds(self, small_system):
        system, _, query_id = small_system
        system.run_epochs(query_id, 2)
        results = system.flush(query_id)
        assert results
        for result in results:
            assert all(b.error_bound >= 0 for b in result.histogram.buckets)

    def test_responses_log_only_contains_participants(self, small_system):
        system, _, query_id = small_system
        report = system.run_epoch(query_id, 0)
        log = system.responses_log(query_id)
        assert len(log) == report.num_participants

    def test_epoch_report_fields(self, small_system):
        system, _, query_id = small_system
        report = system.run_epoch(query_id, 0)
        assert report.epoch == 0
        assert report.num_clients == 40
        assert 0 <= report.num_participants <= 40


class TestFeedbackLoop:
    def test_feedback_raises_sampling_when_error_exceeds_budget(self):
        config = SystemConfig(num_clients=30, num_proxies=2, seed=3)
        system = PrivApproxSystem(config)
        rng = random.Random(11)
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": rng.uniform(0, 3)}]
        )
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True)),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        # Tight accuracy target with heavy randomization: the error bound will
        # exceed the target and the feedback loop must raise the sampling rate.
        initial = ExecutionParameters(sampling_fraction=0.4, p=0.3, q=0.6)
        system.submit_query(
            analyst, query, QueryBudget(target_accuracy_loss=0.01), parameters=initial
        )
        system.run_epochs(query.query_id, 4)
        final = system.parameters_for(query.query_id)
        assert final.sampling_fraction > initial.sampling_fraction


class TestHistoricalIntegration:
    def test_historical_store_receives_randomized_answers(self):
        config = SystemConfig(num_clients=20, num_proxies=2, seed=13, keep_historical=True)
        system = PrivApproxSystem(config)
        rng = random.Random(17)
        system.provision_clients([("value", "REAL")], lambda i: [{"value": rng.uniform(0, 2)}])
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.5),
        )
        reports = system.run_epochs(query.query_id, 2)
        stored = system.historical_store.stored_answer_count(query.query_id)
        assert stored == sum(r.num_participants for r in reports)
