"""Tests for error-bound estimation (Section 3.2.4)."""

import random

import pytest

from repro.core import ErrorEstimator, combined_error_bound, sampling_error_bound
from repro.core.estimation import (
    estimate_randomization_loss_curve,
    estimated_variance,
)


class TestSamplingErrorBound:
    def test_zero_for_full_population(self):
        assert sampling_error_bound([1.0, 2.0, 3.0], population_size=3) == 0.0

    def test_infinite_for_empty_sample(self):
        assert sampling_error_bound([], population_size=100) == float("inf")

    def test_zero_population(self):
        assert sampling_error_bound([], population_size=0) == 0.0

    def test_shrinks_with_larger_samples(self):
        rng = random.Random(1)
        values = [rng.uniform(0, 1) for _ in range(1_000)]
        small = sampling_error_bound(values[:50], population_size=10_000)
        large = sampling_error_bound(values, population_size=10_000)
        assert large < small

    def test_grows_with_confidence_level(self):
        values = [random.Random(2).uniform(0, 1) for _ in range(100)]
        assert sampling_error_bound(values, 10_000, 0.99) > sampling_error_bound(values, 10_000, 0.9)

    def test_zero_variance_sample_has_zero_error(self):
        assert sampling_error_bound([1.0] * 50, population_size=1_000) == 0.0

    def test_variance_finite_population_correction(self):
        """Eq. 4 includes the (U - U')/U finite-population correction."""
        values = [0.0, 1.0] * 25
        nearly_full = estimated_variance(values, population_size=55)
        sparse = estimated_variance(values, population_size=10_000)
        assert nearly_full < sparse

    def test_variance_rejects_small_population(self):
        with pytest.raises(ValueError):
            estimated_variance([1.0, 2.0], population_size=1)


class TestCombinedErrorBound:
    def test_sum_of_components(self):
        assert combined_error_bound(2.0, 3.0) == 5.0

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            combined_error_bound(-1.0, 2.0)


class TestErrorEstimator:
    def test_calibration_loss_reasonable(self):
        estimator = ErrorEstimator(p=0.3, q=0.6, rng=random.Random(5))
        loss = estimator.calibrate_randomized_response(0.6)
        # Table 1: accuracy loss for p=0.3, q=0.6 around 2-3%.
        assert 0.0 < loss < 0.15

    def test_calibration_cached(self):
        estimator = ErrorEstimator(p=0.3, q=0.6, rng=random.Random(5))
        first = estimator.calibrate_randomized_response(0.6)
        second = estimator.calibrate_randomized_response(0.6)
        assert first == second

    def test_calibration_invalid_fraction(self):
        with pytest.raises(ValueError):
            ErrorEstimator(p=0.5, q=0.5).calibrate_randomized_response(1.5)

    def test_higher_p_gives_smaller_calibrated_loss(self):
        low = ErrorEstimator(p=0.3, q=0.6, rng=random.Random(7)).calibrate_randomized_response(0.6)
        high = ErrorEstimator(p=0.9, q=0.6, rng=random.Random(7)).calibrate_randomized_response(0.6)
        assert high < low

    def test_bucket_error_bound_positive_and_finite(self):
        estimator = ErrorEstimator(p=0.9, q=0.6, rng=random.Random(9))
        contributions = [1.0] * 300 + [0.0] * 700
        bound = estimator.bucket_error_bound(
            corrected_values=contributions, population_size=2_000, estimated_count=600.0
        )
        assert 0.0 < bound < float("inf")

    def test_bucket_error_bound_empty_sample_is_infinite(self):
        estimator = ErrorEstimator(p=0.9, q=0.6)
        assert (
            estimator.bucket_error_bound([], population_size=100, estimated_count=0.0)
            == float("inf")
        )

    def test_randomization_error_scales_with_estimate(self):
        estimator = ErrorEstimator(p=0.6, q=0.6, rng=random.Random(11))
        small = estimator.randomization_error(100.0, 0.5)
        large = estimator.randomization_error(1_000.0, 0.5)
        assert large == pytest.approx(10 * small)


class TestErrorDecomposition:
    """Figure 4(b): sampling and randomization errors are independent and additive."""

    def test_loss_curve_decreases_with_p(self):
        fractions = [0.2, 0.5, 0.8]
        loose = estimate_randomization_loss_curve(0.3, 0.6, fractions, num_answers=5_000, seed=1)
        tight = estimate_randomization_loss_curve(0.9, 0.6, fractions, num_answers=5_000, seed=1)
        assert sum(tight) < sum(loose)

    def test_combined_loss_close_to_sum_of_components(self):
        """Run sampling-only, RR-only and combined pipelines; the combined
        accuracy loss should be within the same order as the sum of the two,
        confirming the independence assumption used in the paper."""
        rng = random.Random(31)
        total, yes_fraction = 10_000, 0.6
        true_yes = round(total * yes_fraction)
        answers = [1] * true_yes + [0] * (total - true_yes)
        rng.shuffle(answers)
        s, p, q = 0.6, 0.3, 0.6

        def run_trial() -> tuple[float, float, float]:
            # Sampling only (p = 1).
            sampled = [a for a in answers if rng.random() < s]
            sampling_estimate = (total / len(sampled)) * sum(sampled)
            sampling_loss = abs(true_yes - sampling_estimate) / true_yes
            # Randomized response only (s = 1).
            observed = sum(
                (1 if rng.random() < p else (1 if rng.random() < q else 0)) if a == 1
                else (0 if rng.random() < p else (1 if rng.random() < q else 0))
                for a in answers
            )
            rr_estimate = (observed - (1 - p) * q * total) / p
            rr_loss = abs(true_yes - rr_estimate) / true_yes
            # Combined.
            combined_sample = [a for a in answers if rng.random() < s]
            combined_observed = sum(
                (1 if rng.random() < p else (1 if rng.random() < q else 0)) if a == 1
                else (0 if rng.random() < p else (1 if rng.random() < q else 0))
                for a in combined_sample
            )
            combined_rr = (combined_observed - (1 - p) * q * len(combined_sample)) / p
            combined_estimate = (total / len(combined_sample)) * combined_rr
            combined_loss = abs(true_yes - combined_estimate) / true_yes
            return sampling_loss, rr_loss, combined_loss

        trials = [run_trial() for _ in range(15)]
        mean_sampling = sum(t[0] for t in trials) / len(trials)
        mean_rr = sum(t[1] for t in trials) / len(trials)
        mean_combined = sum(t[2] for t in trials) / len(trials)
        # The combined loss is bounded by (roughly) the sum of the two
        # components and is at least as large as the smaller component.
        assert mean_combined <= 1.8 * (mean_sampling + mean_rr)
        assert mean_combined >= 0.3 * max(mean_sampling, mean_rr)
