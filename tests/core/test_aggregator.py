"""Tests for the aggregator (join, decrypt, window aggregation, error bounds)."""

import random

import pytest

from repro.core import Aggregator, AnswerSpec, ExecutionParameters, RangeBuckets
from repro.core.encryption import AnswerCodec
from repro.core.query import Query, QueryAnswer
from repro.crypto.prng import KeystreamGenerator


def make_query(window: float = 60.0, slide: float = 60.0) -> Query:
    return Query(
        query_id="analyst-00000001",
        sql="SELECT v FROM private_data",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True), value_column="v"
        ),
        frequency_seconds=60.0,
        window_seconds=window,
        slide_seconds=slide,
    )


def encrypt_answers(bit_vectors, epoch=0, num_proxies=2):
    codec = AnswerCodec()
    keystream = KeystreamGenerator(seed=b"agg")
    shares = []
    for bits in bit_vectors:
        answer = QueryAnswer(query_id="analyst-00000001", bits=tuple(bits), epoch=epoch)
        shares.extend(codec.encrypt(answer, num_proxies=num_proxies, keystream=keystream).shares)
    return shares


NOISELESS = ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5)


class TestAggregatorBasics:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Aggregator(query=make_query(), parameters=NOISELESS, total_clients=0)
        with pytest.raises(ValueError):
            Aggregator(query=make_query(), parameters=NOISELESS, total_clients=10, num_proxies=1)
        with pytest.raises(ValueError):
            Aggregator(
                query=make_query(),
                parameters=NOISELESS,
                total_clients=10,
                admission_retention_epochs=0,
            )

    def test_noiseless_single_window_matches_truth(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=4)
        vectors = [[1, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]]
        shares = encrypt_answers(vectors, epoch=0)
        aggregator.ingest_shares(shares, epoch=0)
        results = aggregator.flush()
        assert len(results) == 1
        result = results[0]
        assert result.num_answers == 4
        assert result.histogram.estimates() == pytest.approx([2.0, 1.0, 1.0])

    def test_shares_from_different_epochs_join_correctly(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=2)
        epoch0 = encrypt_answers([[1, 0, 0]], epoch=0)
        epoch1 = encrypt_answers([[0, 1, 0]], epoch=1)
        aggregator.ingest_shares(epoch0, epoch=0)
        results = aggregator.ingest_shares(epoch1, epoch=1)
        # Epoch 1's timestamp (60s) closes the first window [0, 60).
        assert len(results) == 1
        assert results[0].histogram.estimates() == pytest.approx([2.0, 0.0, 0.0])
        final = aggregator.flush()
        assert len(final) == 1
        assert final[0].histogram.estimates() == pytest.approx([0.0, 2.0, 0.0])

    def test_partial_shares_do_not_produce_answers(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=2)
        shares = encrypt_answers([[1, 0, 0]], epoch=0)
        aggregator.ingest_shares(shares[:1], epoch=0)  # only one of the two shares
        assert aggregator.pending_joins() == 1
        assert aggregator.answers_processed == 0
        aggregator.ingest_shares(shares[1:], epoch=0)
        assert aggregator.pending_joins() == 0
        assert aggregator.answers_processed == 1

    def test_three_proxy_deployment(self):
        aggregator = Aggregator(
            query=make_query(), parameters=NOISELESS, total_clients=2, num_proxies=3
        )
        shares = encrypt_answers([[1, 0, 0], [0, 0, 1]], epoch=0, num_proxies=3)
        aggregator.ingest_shares(shares, epoch=0)
        results = aggregator.flush()
        assert results[0].histogram.estimates() == pytest.approx([1.0, 0.0, 1.0])

    def test_empty_flush(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=2)
        assert aggregator.flush() == []


class TestScalingAndEstimation:
    def test_sampling_scale_up_to_population(self):
        """With 50% participation the counts scale up by U/U'."""
        params = ExecutionParameters(sampling_fraction=0.5, p=1.0, q=0.5)
        aggregator = Aggregator(query=make_query(), parameters=params, total_clients=100)
        vectors = [[1, 0, 0]] * 30 + [[0, 1, 0]] * 20  # 50 participants out of 100
        aggregator.ingest_shares(encrypt_answers(vectors), epoch=0)
        result = aggregator.flush()[0]
        assert result.population == 100
        assert result.histogram.estimates()[0] == pytest.approx(60.0)
        assert result.histogram.estimates()[1] == pytest.approx(40.0)

    def test_randomization_correction_recovers_truth_on_average(self):
        rng = random.Random(3)
        p, q = 0.6, 0.3
        params = ExecutionParameters(sampling_fraction=1.0, p=p, q=q)
        query = make_query()
        total_clients = 3_000
        truth_first_bucket = 1_800

        estimates = []
        for trial in range(5):
            aggregator = Aggregator(query=query, parameters=params, total_clients=total_clients)
            vectors = []
            for i in range(total_clients):
                truthful = [1, 0, 0] if i < truth_first_bucket else [0, 1, 0]
                randomized = [
                    bit if rng.random() < p else (1 if rng.random() < q else 0)
                    for bit in truthful
                ]
                vectors.append(randomized)
            aggregator.ingest_shares(encrypt_answers(vectors, epoch=trial), epoch=trial)
        # All epochs land in different windows; use the mean of per-window estimates.
        for result in aggregator.flush():
            estimates.append(result.histogram.estimates()[0])
        mean_estimate = sum(estimates) / len(estimates)
        assert mean_estimate == pytest.approx(truth_first_bucket, rel=0.05)

    def test_error_bounds_are_attached(self):
        params = ExecutionParameters(sampling_fraction=0.5, p=0.9, q=0.6)
        aggregator = Aggregator(query=make_query(), parameters=params, total_clients=200)
        vectors = [[1, 0, 0]] * 60 + [[0, 1, 0]] * 40
        aggregator.ingest_shares(encrypt_answers(vectors), epoch=0)
        result = aggregator.flush()[0]
        bounds = result.histogram.error_bounds()
        assert all(b > 0 for b in bounds)
        assert all(b != float("inf") for b in bounds)

    def test_confidence_interval_covers_truth_in_noiseless_case(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=10)
        vectors = [[1, 0, 0]] * 6 + [[0, 1, 0]] * 4
        aggregator.ingest_shares(encrypt_answers(vectors), epoch=0)
        result = aggregator.flush()[0]
        assert result.histogram.bucket(0).contains(6.0)
        assert result.histogram.bucket(1).contains(4.0)

    def test_empty_window_reports_infinite_error(self):
        params = ExecutionParameters(sampling_fraction=0.5, p=0.9, q=0.6)
        aggregator = Aggregator(query=make_query(), parameters=params, total_clients=10)
        # Ingest one epoch, then force a later window with no matching data by
        # flushing after ingesting an empty epoch far in the future.
        aggregator.ingest_shares(encrypt_answers([[1, 0, 0]]), epoch=0)
        results = aggregator.flush()
        assert len(results) == 1


class TestSlidingWindows:
    def test_sliding_window_counts_answers_in_overlapping_windows(self):
        query = make_query(window=120.0, slide=60.0)
        aggregator = Aggregator(query=query, parameters=NOISELESS, total_clients=1)
        aggregator.ingest_shares(encrypt_answers([[1, 0, 0]], epoch=1), epoch=1)
        results = aggregator.flush()
        # Epoch 1 (t=60) falls into windows [0,120) and [60,180).
        assert len(results) == 2
        for result in results:
            assert result.histogram.estimates()[0] == pytest.approx(1.0)

    def test_window_results_ordered_by_time(self):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=1)
        for epoch in range(3):
            aggregator.ingest_shares(encrypt_answers([[1, 0, 0]], epoch=epoch), epoch=epoch)
        results = aggregator.flush()
        starts = [r.window.start for r in results]
        assert starts == sorted(starts)


class TestBatchedDecryptMatchesReference:
    """The shard-batched XOR decrypt must keep the per-record path's bytes.

    ``ingest_shares(batched=True)`` now decrypts the whole grouped batch in
    one vectorized pass (``join_shares_batch``); its decoded answers,
    window results and malformed counters must equal the per-record
    reference path on the same shares — corrupted groups included.
    """

    def _window_bytes(self, results):
        return [
            (r.window.start, r.window.end, r.num_answers,
             tuple((b.estimate, b.error_bound) for b in r.histogram.buckets))
            for r in results
        ]

    def _run(self, shares_by_epoch, batched):
        aggregator = Aggregator(query=make_query(), parameters=NOISELESS, total_clients=8)
        emitted = []
        for epoch, shares in enumerate(shares_by_epoch):
            emitted.extend(aggregator.ingest_shares(shares, epoch=epoch, batched=batched))
        emitted.extend(aggregator.flush())
        return aggregator, emitted

    def test_clean_multi_epoch_stream(self):
        shares_by_epoch = [
            encrypt_answers([[1, 0, 0], [0, 1, 0], [0, 0, 1]], epoch=0),
            encrypt_answers([[1, 1, 0], [0, 0, 0]], epoch=1),
        ]
        reference, ref_results = self._run(shares_by_epoch, batched=False)
        batched, batch_results = self._run(shares_by_epoch, batched=True)
        assert self._window_bytes(batch_results) == self._window_bytes(ref_results)
        assert batched.answers_processed == reference.answers_processed
        assert batched.malformed_messages == reference.malformed_messages == 0

    def test_corrupted_group_counts_identically(self):
        clean = encrypt_answers([[1, 0, 0], [0, 1, 0]], epoch=0)
        # Corrupt one message's payload bytes: the group still joins (equal
        # lengths, same MID) but decodes to garbage -> malformed on both paths.
        bad = encrypt_answers([[0, 0, 1]], epoch=0)
        from repro.crypto.xor import MessageShare
        corrupted = [
            MessageShare(
                message_id=share.message_id,
                payload=bytes(b ^ 0xFF for b in share.payload),
                index=share.index,
            )
            if share.index == 0
            else share
            for share in bad
        ]
        shares_by_epoch = [clean + corrupted]
        reference, ref_results = self._run(shares_by_epoch, batched=False)
        batched, batch_results = self._run(shares_by_epoch, batched=True)
        assert self._window_bytes(batch_results) == self._window_bytes(ref_results)
        assert batched.malformed_messages == reference.malformed_messages == 1
        assert batched.answers_processed == reference.answers_processed == 2
