"""Tests for the operational metrics collector."""

import pytest

from repro.core.metrics import SystemMetrics


class TestSystemMetrics:
    def test_snapshot_counts_participation_and_shares(self, small_system):
        system, _, query_id = small_system
        metrics = SystemMetrics(system)
        for epoch in range(3):
            metrics.run_and_record(query_id, epoch)
        snapshot = metrics.snapshot(query_id)
        assert snapshot.epochs_run == 3
        assert 0.6 < snapshot.mean_participation_rate <= 1.0
        assert snapshot.shares_relayed == snapshot.answers_processed * 2
        assert snapshot.bytes_relayed > 0
        assert snapshot.pending_joins == 0
        assert snapshot.malformed_messages == 0
        assert snapshot.invalid_answers == 0
        assert snapshot.rejected_duplicates == 0

    def test_snapshot_reflects_current_parameters(self, small_system):
        system, _, query_id = small_system
        metrics = SystemMetrics(system)
        snapshot = metrics.snapshot(query_id)
        params = system.parameters_for(query_id)
        assert snapshot.current_sampling_fraction == params.sampling_fraction
        assert snapshot.current_p == params.p
        assert snapshot.epsilon_zk == pytest.approx(params.epsilon_zk)

    def test_rejection_rate_zero_for_clean_run(self, small_system):
        system, _, query_id = small_system
        metrics = SystemMetrics(system)
        metrics.run_and_record(query_id, 0)
        assert metrics.snapshot(query_id).rejection_rate() == 0.0

    def test_record_epoch_manual(self, small_system):
        system, _, query_id = small_system
        metrics = SystemMetrics(system)
        report = system.run_epoch(query_id, 0)
        metrics.record_epoch(report, query_id)
        assert metrics.snapshot(query_id).epochs_run == 1

    def test_format_snapshot_mentions_key_counters(self, small_system):
        system, _, query_id = small_system
        metrics = SystemMetrics(system)
        metrics.run_and_record(query_id, 0)
        text = metrics.format_snapshot(query_id)
        assert "participation" in text
        assert "epsilon_zk" in text
        assert query_id in text

    def test_snapshot_before_any_epoch(self, small_system):
        system, _, query_id = small_system
        metrics = SystemMetrics(system)
        snapshot = metrics.snapshot(query_id)
        assert snapshot.epochs_run == 0
        assert snapshot.mean_participation_rate == 0.0
