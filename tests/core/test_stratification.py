"""Tests for stratified deployments (technical-report extension)."""

import random

import pytest

from repro.analytics import histogram_accuracy_loss
from repro.analytics.histogram import BucketEstimate, HistogramResult
from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    QueryBudget,
    RangeBuckets,
    StratifiedDeployment,
    StratumSpec,
    combine_stratum_histograms,
)


def histogram(values, bounds, num_answers=10):
    result = HistogramResult(num_answers=num_answers)
    for index, (value, bound) in enumerate(zip(values, bounds)):
        result.add_bucket(BucketEstimate(index, f"b{index}", value, bound))
    return result


class TestCombineStratumHistograms:
    def test_estimates_add(self):
        combined = combine_stratum_histograms(
            [histogram([10, 20], [1, 2]), histogram([5, 5], [2, 2])]
        )
        assert combined.estimates() == [15.0, 25.0]

    def test_error_bounds_combine_as_rss(self):
        combined = combine_stratum_histograms(
            [histogram([10, 20], [3, 4]), histogram([5, 5], [4, 3])]
        )
        assert combined.error_bounds()[0] == pytest.approx(5.0)
        assert combined.error_bounds()[1] == pytest.approx(5.0)

    def test_num_answers_add(self):
        combined = combine_stratum_histograms(
            [histogram([1], [1], num_answers=4), histogram([1], [1], num_answers=6)]
        )
        assert combined.num_answers == 10

    def test_infinite_bound_propagates(self):
        combined = combine_stratum_histograms(
            [histogram([1], [float("inf")]), histogram([1], [1])]
        )
        assert combined.error_bounds()[0] == float("inf")

    def test_mismatched_layout_rejected(self):
        with pytest.raises(ValueError):
            combine_stratum_histograms([histogram([1], [1]), histogram([1, 2], [1, 1])])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            combine_stratum_histograms([])


class TestStratumSpec:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            StratumSpec("s", 0, (("v", "REAL"),), lambda i: [])
        with pytest.raises(ValueError):
            StratumSpec("s", 5, (("v", "REAL"),), lambda i: [], sampling_fraction=0.0)


def build_deployment(seed: int = 3) -> tuple[StratifiedDeployment, Analyst, str]:
    """Two strata with very different value distributions."""
    heavy_rng = random.Random(seed)
    light_rng = random.Random(seed + 1)
    deployment = StratifiedDeployment(
        strata=[
            StratumSpec(
                name="heavy",
                num_clients=120,
                columns=(("value", "REAL"),),
                data_for_client=lambda i: [{"value": heavy_rng.uniform(2.0, 3.0)}],
            ),
            StratumSpec(
                name="light",
                num_clients=400,
                columns=(("value", "REAL"),),
                data_for_client=lambda i: [{"value": light_rng.uniform(0.0, 1.0)}],
            ),
        ],
        seed=seed,
    )
    analyst = Analyst("strata-analyst")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0, 3.0), open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    deployment.submit_query(
        analyst,
        query,
        QueryBudget(),
        parameters=ExecutionParameters(sampling_fraction=0.8, p=1.0, q=0.5),
    )
    return deployment, analyst, query.query_id


class TestStratifiedDeployment:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            StratifiedDeployment(strata=[])
        spec = StratumSpec("dup", 5, (("v", "REAL"),), lambda i: [])
        with pytest.raises(ValueError):
            StratifiedDeployment(strata=[spec, spec])

    def test_run_before_submit_rejected(self):
        spec = StratumSpec("only", 5, (("v", "REAL"),), lambda i: [{"v": 1.0}])
        deployment = StratifiedDeployment(strata=[spec], seed=1)
        with pytest.raises(RuntimeError):
            deployment.run_epoch(0)

    def test_combined_estimate_tracks_population_truth(self):
        deployment, _, _ = build_deployment()
        deployment.run_epoch(0)
        results = deployment.flush()
        assert len(results) == 1
        combined = results[0].histogram
        exact = deployment.exact_bucket_counts()
        loss = histogram_accuracy_loss(exact, combined.estimates())
        assert loss < 0.25
        assert combined.num_answers <= deployment.total_clients()

    def test_per_stratum_results_available(self):
        deployment, _, _ = build_deployment()
        deployment.run_epoch(0)
        results = deployment.flush()
        assert set(results[0].per_stratum) == {"heavy", "light"}

    def test_per_stratum_sampling_override(self):
        rng = random.Random(5)
        deployment = StratifiedDeployment(
            strata=[
                StratumSpec(
                    name="dense",
                    num_clients=50,
                    columns=(("value", "REAL"),),
                    data_for_client=lambda i: [{"value": rng.uniform(0, 1)}],
                    sampling_fraction=1.0,
                ),
                StratumSpec(
                    name="sparse",
                    num_clients=50,
                    columns=(("value", "REAL"),),
                    data_for_client=lambda i: [{"value": rng.uniform(0, 1)}],
                    sampling_fraction=0.2,
                ),
            ],
            seed=5,
        )
        analyst = Analyst("a")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        applied = deployment.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=0.8, p=0.9, q=0.5),
        )
        assert applied["dense"].sampling_fraction == 1.0
        assert applied["sparse"].sampling_fraction == 0.2

    def test_epochwise_results_accumulate(self):
        deployment, analyst, query_id = build_deployment()
        first = deployment.run_epoch(0)
        second = deployment.run_epoch(1)
        final = deployment.flush()
        total_windows = len(first) + len(second) + len(final)
        assert total_windows == 2
