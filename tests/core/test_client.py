"""Tests for the PrivApprox client (local DB, sampling, answering, encryption)."""

import pytest

from repro.core import AnswerSpec, Client, ClientConfig, ExecutionParameters, RangeBuckets
from repro.core.query import Query


def make_client(seed: int = 1, num_proxies: int = 2) -> Client:
    client = Client(ClientConfig(client_id="c-1", num_proxies=num_proxies, seed=seed))
    client.create_table([("speed", "REAL"), ("location", "TEXT")])
    return client


def make_query(window: float = 60.0) -> Query:
    return Query(
        query_id="analyst-00000001",
        sql="SELECT speed FROM private_data WHERE location = 'San Francisco'",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 10.0, 20.0, 30.0), open_ended=True),
            value_column="speed",
        ),
        frequency_seconds=60.0,
        window_seconds=window,
        slide_seconds=window,
    )


ALWAYS = ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5)


class TestClientLocalData:
    def test_config_requires_two_proxies(self):
        with pytest.raises(ValueError):
            ClientConfig(client_id="c", num_proxies=1)

    def test_ingest_and_count(self):
        client = make_client()
        client.ingest([{"speed": 15.0, "location": "San Francisco"}])
        assert client.local_row_count() == 1

    def test_private_data_stays_local(self):
        """Ingested raw values are only in the client's own database."""
        client = make_client()
        client.ingest([{"speed": 33.3, "location": "San Francisco"}])
        rows = client.database.query("SELECT speed FROM private_data").column("speed")
        assert rows == [33.3]


class TestSubscription:
    def test_subscribe_and_unsubscribe(self):
        client = make_client()
        query = make_query()
        client.subscribe(query, ALWAYS)
        assert client.subscribed_query_ids == [query.query_id]
        client.unsubscribe(query.query_id)
        assert client.subscribed_query_ids == []

    def test_answer_unknown_query_returns_none(self):
        assert make_client().answer_query("unknown") is None

    def test_truthful_answer_requires_subscription(self):
        with pytest.raises(KeyError):
            make_client().truthful_answer("unknown")


class TestAnswering:
    def test_truthful_answer_buckets_latest_matching_row(self):
        client = make_client()
        client.ingest(
            [
                {"speed": 5.0, "location": "San Francisco"},
                {"speed": 25.0, "location": "San Francisco"},
            ]
        )
        query = make_query()
        client.subscribe(query, ALWAYS)
        assert client.truthful_answer(query.query_id) == [0, 0, 1, 0]

    def test_non_matching_rows_give_all_zero_answer(self):
        client = make_client()
        client.ingest([{"speed": 15.0, "location": "Boston"}])
        query = make_query()
        client.subscribe(query, ALWAYS)
        assert client.truthful_answer(query.query_id) == [0, 0, 0, 0]

    def test_no_data_gives_all_zero_answer(self):
        client = make_client()
        query = make_query()
        client.subscribe(query, ALWAYS)
        assert client.truthful_answer(query.query_id) == [0, 0, 0, 0]

    def test_answer_with_p1_matches_truth(self):
        client = make_client()
        client.ingest([{"speed": 12.0, "location": "San Francisco"}])
        query = make_query()
        client.subscribe(query, ALWAYS)
        response = client.answer_query(query.query_id, epoch=0)
        assert response is not None
        assert list(response.randomized_bits) == [0, 1, 0, 0]
        assert response.truthful_bits == (0, 1, 0, 0)

    def test_zero_sampling_never_participates(self):
        client = make_client()
        client.ingest([{"speed": 12.0, "location": "San Francisco"}])
        query = make_query()
        client.subscribe(
            query, ExecutionParameters(sampling_fraction=0.001, p=1.0, q=0.5)
        )
        responses = [client.answer_query(query.query_id, epoch=e) for e in range(50)]
        assert sum(r is not None for r in responses) <= 2

    def test_sampling_rate_respected(self):
        client = make_client(seed=77)
        client.ingest([{"speed": 12.0, "location": "San Francisco"}])
        query = make_query()
        client.subscribe(query, ExecutionParameters(sampling_fraction=0.5, p=1.0, q=0.5))
        responses = [client.answer_query(query.query_id, epoch=e) for e in range(400)]
        participation = sum(r is not None for r in responses) / 400
        assert 0.4 < participation < 0.6

    def test_encrypted_shares_decrypt_to_randomized_answer(self):
        from repro.core.encryption import AnswerCodec

        client = make_client()
        client.ingest([{"speed": 12.0, "location": "San Francisco"}])
        query = make_query()
        client.subscribe(query, ALWAYS)
        response = client.answer_query(query.query_id, epoch=4)
        decoded = AnswerCodec().decrypt(list(response.encrypted.shares))
        assert decoded.bits == response.randomized_bits
        assert decoded.query_id == query.query_id
        assert decoded.epoch == 4

    def test_shares_count_matches_proxies(self):
        client = Client(ClientConfig(client_id="c", num_proxies=3, seed=5))
        client.create_table([("speed", "REAL"), ("location", "TEXT")])
        client.ingest([{"speed": 12.0, "location": "San Francisco"}])
        query = make_query()
        client.subscribe(query, ALWAYS)
        response = client.answer_query(query.query_id)
        assert response.encrypted.num_shares == 3

    def test_cosubscription_does_not_perturb_other_queries(self):
        """Per-query RNG *and* keystream isolation, encrypted bytes included.

        A non-first query's responses — sampling decisions, randomized bits
        and the encrypted shares' pad bytes — must be identical whether the
        client answers it alone or after a co-subscribed query in the same
        pass.  A shared RNG or keystream would shift the later query's draws.
        """
        query_a = make_query()
        query_b = Query(
            query_id="analyst-00000002",
            sql="SELECT speed FROM private_data WHERE location = 'San Francisco'",
            answer_spec=AnswerSpec(
                buckets=RangeBuckets(boundaries=(0.0, 15.0, 30.0), open_ended=True),
                value_column="speed",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        params = ExecutionParameters(sampling_fraction=0.7, p=0.9, q=0.5)

        def provision(client):
            client.ingest([{"speed": 12.0, "location": "San Francisco"}])
            return client

        together = provision(make_client(seed=99))
        together.subscribe(query_a, params)
        together.subscribe(query_b, params)
        alone = provision(make_client(seed=99))
        alone.subscribe(query_b, params)
        for epoch in range(20):
            _, co_response = together.answer(
                [query_a.query_id, query_b.query_id], epoch=epoch
            )
            (solo_response,) = alone.answer([query_b.query_id], epoch=epoch)
            assert (co_response is None) == (solo_response is None)
            if co_response is None:
                continue
            assert co_response.randomized_bits == solo_response.randomized_bits
            assert [s.payload for s in co_response.encrypted.shares] == [
                s.payload for s in solo_response.encrypted.shares
            ]

    def test_randomization_changes_answers_with_low_p(self):
        client = make_client(seed=11)
        client.ingest([{"speed": 12.0, "location": "San Francisco"}])
        query = make_query()
        client.subscribe(query, ExecutionParameters(sampling_fraction=1.0, p=0.1, q=0.5))
        different = 0
        for epoch in range(50):
            response = client.answer_query(query.query_id, epoch=epoch)
            if response.randomized_bits != response.truthful_bits:
                different += 1
        assert different > 10
