"""Tests for historical (batch) analytics over stored responses."""

import pytest

from repro.core import (
    AnswerSpec,
    ExecutionParameters,
    HistoricalAnalytics,
    HistoricalStore,
    QueryBudget,
    RangeBuckets,
)
from repro.core.query import Query, QueryAnswer


def make_query() -> Query:
    return Query(
        query_id="analyst-00000001",
        sql="SELECT v FROM private_data",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True), value_column="v"
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )


NOISELESS = ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5)


def populate(store: HistoricalStore, per_epoch: int = 10, epochs: int = 3) -> None:
    for epoch in range(epochs):
        answers = []
        for i in range(per_epoch):
            bits = (1, 0, 0) if i % 2 == 0 else (0, 1, 0)
            answers.append(QueryAnswer(query_id="analyst-00000001", bits=bits, epoch=epoch))
        store.append_batch(answers, epoch_timestamp=epoch * 60.0)


class TestHistoricalStore:
    def test_append_and_read_roundtrip(self):
        store = HistoricalStore()
        populate(store)
        answers = store.read_answers("analyst-00000001")
        assert len(answers) == 30
        assert all(isinstance(a, QueryAnswer) for a, _ in answers)

    def test_read_missing_query_returns_empty(self):
        assert HistoricalStore().read_answers("missing") == []

    def test_time_range_filter(self):
        store = HistoricalStore()
        populate(store, epochs=3)
        answers = store.read_answers("analyst-00000001", start_time=60.0, end_time=120.0)
        assert len(answers) == 10
        assert all(timestamp == 60.0 for _, timestamp in answers)

    def test_stored_answer_count(self):
        store = HistoricalStore()
        populate(store, per_epoch=5, epochs=2)
        assert store.stored_answer_count("analyst-00000001") == 10


class TestHistoricalAnalytics:
    def test_batch_query_over_all_epochs(self):
        store = HistoricalStore()
        populate(store, per_epoch=10, epochs=3)
        analytics = HistoricalAnalytics(store=store, seed=1)
        histogram = analytics.run_batch_query(
            make_query(), NOISELESS, total_clients_per_epoch=10
        )
        # 30 answers over 3 epochs, population 30; half in bucket 0, half in bucket 1.
        assert histogram.num_answers == 30
        assert histogram.estimates()[0] == pytest.approx(15.0)
        assert histogram.estimates()[1] == pytest.approx(15.0)

    def test_batch_query_over_time_range(self):
        store = HistoricalStore()
        populate(store, per_epoch=10, epochs=3)
        analytics = HistoricalAnalytics(store=store, seed=1)
        histogram = analytics.run_batch_query(
            make_query(),
            NOISELESS,
            total_clients_per_epoch=10,
            start_time=0.0,
            end_time=60.0,
        )
        assert histogram.num_answers == 10

    def test_cost_budget_triggers_resampling(self):
        store = HistoricalStore()
        populate(store, per_epoch=100, epochs=2)
        analytics = HistoricalAnalytics(store=store, seed=3)
        budget = QueryBudget(max_cost_units=50)
        histogram = analytics.run_batch_query(
            make_query(), NOISELESS, total_clients_per_epoch=100, budget=budget
        )
        # Only about a quarter of the 200 stored answers are scanned.
        assert histogram.num_answers < 120
        # The estimate still scales to the full population.
        assert histogram.total() == pytest.approx(200.0, rel=0.35)

    def test_empty_store_gives_empty_histogram(self):
        analytics = HistoricalAnalytics(store=HistoricalStore(), seed=1)
        histogram = analytics.run_batch_query(make_query(), NOISELESS, total_clients_per_epoch=10)
        assert histogram.num_answers == 0
        assert all(b.error_bound == float("inf") for b in histogram.buckets)

    def test_error_bounds_present_for_randomized_answers(self):
        store = HistoricalStore()
        populate(store, per_epoch=50, epochs=2)
        analytics = HistoricalAnalytics(store=store, seed=5)
        params = ExecutionParameters(sampling_fraction=1.0, p=0.9, q=0.6)
        histogram = analytics.run_batch_query(make_query(), params, total_clients_per_epoch=50)
        assert all(b.error_bound > 0 for b in histogram.buckets)
