"""Tests for the proxy tier (anonymizing relays)."""

import pytest

from repro.core import ProxyNetwork
from repro.core.encryption import AnswerCodec
from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator


def encrypted_answer(num_proxies: int = 2, bits=(1, 0, 1)):
    return AnswerCodec().encrypt(
        QueryAnswer(query_id="q", bits=tuple(bits)),
        num_proxies=num_proxies,
        keystream=KeystreamGenerator(seed=b"t"),
    )


class TestProxyNetwork:
    def test_requires_at_least_two_proxies(self):
        with pytest.raises(ValueError):
            ProxyNetwork(num_proxies=1)

    def test_transmit_fans_shares_out(self):
        network = ProxyNetwork(num_proxies=3)
        answer = encrypted_answer(num_proxies=3)
        network.transmit(list(answer.shares))
        assert [proxy.shares_relayed for proxy in network.proxies] == [1, 1, 1]
        assert network.total_shares_relayed() == 3

    def test_transmit_rejects_wrong_share_count(self):
        network = ProxyNetwork(num_proxies=2)
        answer = encrypted_answer(num_proxies=3)
        with pytest.raises(ValueError):
            network.transmit(list(answer.shares))

    def test_each_proxy_stores_only_its_share(self):
        """No proxy ever holds two shares of the same message (non-collusion)."""
        network = ProxyNetwork(num_proxies=2)
        answer = encrypted_answer(num_proxies=2)
        network.transmit(list(answer.shares))
        for proxy in network.proxies:
            records = proxy.cluster.topic(proxy.topic_name).all_records()
            message_ids = [r.value.message_id for r in records]
            assert len(message_ids) == len(set(message_ids)) == 1

    def test_consumers_receive_relayed_shares(self):
        network = ProxyNetwork(num_proxies=2)
        consumers = network.make_consumers()
        answer = encrypted_answer(num_proxies=2)
        network.transmit(list(answer.shares))
        received = []
        for consumer in consumers:
            received.extend(record.value for record in consumer.poll())
        assert len(received) == 2
        assert AnswerCodec().decrypt(received).bits == (1, 0, 1)

    def test_proxy_cannot_decrypt_alone(self):
        """A single proxy's view is an opaque byte string, not the answer."""
        network = ProxyNetwork(num_proxies=2)
        answer = encrypted_answer(num_proxies=2)
        plaintext = AnswerCodec().encode(QueryAnswer(query_id="q", bits=(1, 0, 1)))
        network.transmit(list(answer.shares))
        for proxy in network.proxies:
            records = proxy.cluster.topic(proxy.topic_name).all_records()
            assert all(record.value.payload != plaintext for record in records)

    def test_bytes_relayed_accounting(self):
        network = ProxyNetwork(num_proxies=2)
        answer = encrypted_answer(num_proxies=2)
        network.transmit(list(answer.shares))
        assert network.total_bytes_relayed() == answer.total_bytes()

    def test_pending_shares(self):
        network = ProxyNetwork(num_proxies=2)
        answer = encrypted_answer(num_proxies=2)
        network.transmit(list(answer.shares))
        assert all(proxy.pending_shares() == 1 for proxy in network.proxies)

    def test_reset_metrics(self):
        network = ProxyNetwork(num_proxies=2)
        network.transmit(list(encrypted_answer().shares))
        for proxy in network.proxies:
            proxy.reset_metrics()
        assert network.total_shares_relayed() == 0


class TestProxyPerformanceModel:
    def test_throughput_falls_with_message_size(self):
        network = ProxyNetwork(num_proxies=2)
        assert network.modelled_throughput(64) >= network.modelled_throughput(4096)

    def test_latency_linear_in_share_count(self):
        network = ProxyNetwork(num_proxies=2)
        assert network.modelled_latency(2_000_000, 64) == pytest.approx(
            2 * network.modelled_latency(1_000_000, 64)
        )


class TestShardAwareTopics:
    """The pipelined runtime's per-shard relay topics and batch records."""

    def test_transmit_shard_relays_every_share(self):
        network = ProxyNetwork(num_proxies=2)
        rows = [list(encrypted_answer(num_proxies=2).shares) for _ in range(5)]
        consumers = network.make_shard_consumers(group_id="t", num_slots=3)
        network.transmit_shard(1, rows)
        # One batch record per proxy on slot 1, nothing on other slots.
        for slot in (0, 2):
            assert all(not consumer.poll() for consumer in consumers[slot])
        relayed = []
        for proxy_index, consumer in enumerate(consumers[1]):
            records = consumer.poll()
            assert len(records) == 1  # one batch record per shard transmission
            relayed.append(list(records[0].value))
            assert relayed[-1] == [row[proxy_index] for row in rows]
        assert network.total_shares_relayed() == 10

    def test_transmit_shard_empty_rows_is_noop(self):
        network = ProxyNetwork(num_proxies=2)
        network.ensure_shard_topics(2)
        network.transmit_shard(0, [])
        assert network.total_shares_relayed() == 0

    def test_transmit_shard_rejects_wrong_share_count(self):
        network = ProxyNetwork(num_proxies=2)
        network.ensure_shard_topics(1)
        rows = [list(encrypted_answer(num_proxies=3).shares)]
        with pytest.raises(ValueError):
            network.transmit_shard(0, rows)

    def test_ensure_shard_topics_is_idempotent(self):
        network = ProxyNetwork(num_proxies=2)
        network.ensure_shard_topics(2)
        network.ensure_shard_topics(4)  # growing the slot count is fine
        names = network.proxies[0].ensure_shard_topics(4)
        assert names == [f"proxy-0-shard-{slot}" for slot in range(4)]

    def test_byte_accounting_counts_each_share(self):
        network = ProxyNetwork(num_proxies=2)
        network.ensure_shard_topics(1)
        rows = [list(encrypted_answer(num_proxies=2).shares) for _ in range(3)]
        network.transmit_shard(0, rows)
        expected = sum(share.size_bytes() for row in rows for share in row)
        assert network.total_bytes_relayed() == expected
