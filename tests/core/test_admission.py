"""Tests for the duplicate-answer defense (participation tokens + admission)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AnswerAdmissionController, participation_token


class TestParticipationToken:
    def test_stable_within_epoch(self):
        secret = b"client-secret"
        assert participation_token(secret, "q1", 5) == participation_token(secret, "q1", 5)

    def test_unlinkable_across_epochs(self):
        secret = b"client-secret"
        assert participation_token(secret, "q1", 5) != participation_token(secret, "q1", 6)

    def test_differs_per_query(self):
        secret = b"client-secret"
        assert participation_token(secret, "q1", 5) != participation_token(secret, "q2", 5)

    def test_differs_per_client(self):
        assert participation_token(b"a", "q1", 5) != participation_token(b"b", "q1", 5)

    def test_token_reveals_nothing_obvious(self):
        token = participation_token(b"secret", "q1", 5)
        assert "q1" not in token
        assert len(token) == 32

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            participation_token(b"", "q1", 1)
        with pytest.raises(ValueError):
            participation_token(b"s", "q1", -1)

    @given(
        secret=st.binary(min_size=1, max_size=32),
        epoch_a=st.integers(min_value=0, max_value=1_000),
        epoch_b=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_collision_free_across_epochs_property(self, secret, epoch_a, epoch_b):
        token_a = participation_token(secret, "q", epoch_a)
        token_b = participation_token(secret, "q", epoch_b)
        assert (token_a == token_b) == (epoch_a == epoch_b)


class TestAnswerAdmissionController:
    def test_first_answer_admitted(self):
        controller = AnswerAdmissionController()
        assert controller.admit("q", 0, "token-a").admitted

    def test_duplicate_rejected(self):
        controller = AnswerAdmissionController()
        controller.admit("q", 0, "token-a")
        decision = controller.admit("q", 0, "token-a")
        assert not decision.admitted
        assert decision.reason == "duplicate token"
        assert controller.duplicates_rejected == 1

    def test_same_token_allowed_in_next_epoch(self):
        controller = AnswerAdmissionController()
        controller.admit("q", 0, "token-a")
        assert controller.admit("q", 1, "token-a").admitted

    def test_same_token_allowed_for_other_query(self):
        controller = AnswerAdmissionController()
        controller.admit("q1", 0, "token-a")
        assert controller.admit("q2", 0, "token-a").admitted

    def test_missing_token_rejected(self):
        assert not AnswerAdmissionController().admit("q", 0, "").admitted

    def test_rate_limit(self):
        controller = AnswerAdmissionController(max_answers_per_epoch=2)
        assert controller.admit("q", 0, "a").admitted
        assert controller.admit("q", 0, "b").admitted
        decision = controller.admit("q", 0, "c")
        assert not decision.admitted
        assert decision.reason == "epoch rate limit"
        assert controller.rate_limited == 1

    def test_rate_limit_is_per_epoch(self):
        controller = AnswerAdmissionController(max_answers_per_epoch=1)
        controller.admit("q", 0, "a")
        assert controller.admit("q", 1, "b").admitted

    def test_admitted_count(self):
        controller = AnswerAdmissionController()
        controller.admit("q", 0, "a")
        controller.admit("q", 0, "b")
        controller.admit("q", 0, "a")  # duplicate
        assert controller.admitted_count("q", 0) == 2

    def test_forget_epoch_releases_state(self):
        controller = AnswerAdmissionController()
        controller.admit("q", 0, "a")
        assert controller.tracked_epochs() == 1
        controller.forget_epoch("q", 0)
        assert controller.tracked_epochs() == 0
        # After forgetting, the same token is admitted again (the window is closed anyway).
        assert controller.admit("q", 0, "a").admitted

    def test_forget_epochs_before_drops_only_older_epochs(self):
        controller = AnswerAdmissionController()
        for epoch in range(5):
            controller.admit("q", epoch, f"token-{epoch}")
        controller.admit("other", 0, "token")
        assert controller.forget_epochs_before("q", 3) == 3
        assert controller.tracked_epochs() == 3  # q@3, q@4, other@0
        # Retained epochs still deduplicate.
        assert not controller.admit("q", 3, "token-3").admitted
        assert not controller.admit("q", 4, "token-4").admitted
        # Other queries' state is untouched.
        assert not controller.admit("other", 0, "token").admitted

    def test_forget_epochs_before_is_idempotent(self):
        controller = AnswerAdmissionController()
        controller.admit("q", 0, "a")
        controller.admit("q", 1, "b")
        assert controller.forget_epochs_before("q", 1) == 1
        assert controller.forget_epochs_before("q", 1) == 0
        assert controller.tracked_epochs() == 1


class TestAdmissionStateStaysBounded:
    """The long-running-stream fix: epoch state is retired after ingest.

    Without retirement every (query, epoch) token set lives forever; the
    system now calls ``Aggregator.finish_epoch`` once an epoch's ingest
    completes, keeping only a small retention window.
    """

    def _run_epochs(self, num_epochs):
        import random

        from repro.core import (
            Analyst,
            AnswerSpec,
            ExecutionParameters,
            PrivApproxSystem,
            QueryBudget,
            RangeBuckets,
            SystemConfig,
        )

        system = PrivApproxSystem(SystemConfig(num_clients=10, seed=3))
        rng = random.Random(3)
        system.provision_clients(
            [("value", "REAL")], lambda i: [{"value": rng.uniform(0.0, 8.0)}]
        )
        analyst = Analyst("bounded")
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(0.0, 8.0, 4, open_ended=True),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.5),
        )
        system.run_epochs(query.query_id, num_epochs)
        admission = system.aggregator_for(query.query_id).admission
        retention = system.aggregator_for(query.query_id).admission_retention_epochs
        system.close()
        return admission, retention

    def test_tracked_epochs_bounded_over_many_epochs(self):
        admission, retention = self._run_epochs(25)
        assert admission is not None
        assert admission.tracked_epochs() <= retention

    def test_retained_window_still_deduplicates_current_epoch(self):
        admission, _ = self._run_epochs(5)
        # The last completed epoch's tokens are still tracked: replaying any
        # of them is rejected.
        (query_id, epoch), tokens = max(
            admission._seen.items(), key=lambda item: item[0][1]
        )
        token = next(iter(tokens))
        assert not admission.admit(query_id, epoch, token).admitted


class TestAdmissionInsideAggregator:
    def test_duplicate_flood_does_not_distort_result(self):
        """A client replaying its answer 50 times contributes only once."""
        from repro.core import Aggregator, AnswerSpec, ExecutionParameters, RangeBuckets
        from repro.core.encryption import AnswerCodec
        from repro.core.query import Query, QueryAnswer
        from repro.crypto.prng import KeystreamGenerator

        query = Query(
            query_id="analyst-00000001",
            sql="SELECT v FROM private_data",
            answer_spec=AnswerSpec(
                buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True)
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        aggregator = Aggregator(
            query=query,
            parameters=ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5),
            total_clients=10,
            admission=AnswerAdmissionController(),
        )
        codec = AnswerCodec()
        keystream = KeystreamGenerator(seed=b"dup")
        shares = []
        # Nine honest clients answer bucket 0 once each.
        for i in range(9):
            honest = QueryAnswer(
                query_id=query.query_id, bits=(1, 0, 0), epoch=0, token=f"honest-{i}"
            )
            shares.extend(codec.encrypt(honest, num_proxies=2, keystream=keystream).shares)
        # One malicious client replays a bucket-2 answer 50 times with one token.
        for _ in range(50):
            malicious = QueryAnswer(
                query_id=query.query_id, bits=(0, 0, 1), epoch=0, token="malicious"
            )
            shares.extend(codec.encrypt(malicious, num_proxies=2, keystream=keystream).shares)
        aggregator.ingest_shares(shares, epoch=0)
        result = aggregator.flush()[0]
        assert aggregator.rejected_duplicates == 49
        assert result.num_answers == 10
        assert result.histogram.estimates()[0] == pytest.approx(9.0)
        assert result.histogram.estimates()[2] == pytest.approx(1.0)


class TestAdmitBatch:
    """admit_batch must mirror per-answer admit() decisions and counters."""

    def _items(self):
        return (
            [(0, f"token-{i}") for i in range(5)]
            + [(0, "token-2"), (0, "token-2")]          # in-batch duplicates
            + [(1, "token-2"), (0, ""), (1, "fresh")]   # new epoch, missing token
        )

    def test_batch_matches_per_answer_reference(self):
        batched = AnswerAdmissionController()
        reference = AnswerAdmissionController()
        items = self._items()
        verdicts = batched.admit_batch("q", items)
        expected = [reference.admit("q", epoch, token).admitted for epoch, token in items]
        assert verdicts == expected
        assert batched.duplicates_rejected == reference.duplicates_rejected
        assert batched.admitted_count("q", 0) == reference.admitted_count("q", 0)
        assert batched.admitted_count("q", 1) == reference.admitted_count("q", 1)

    def test_batch_sees_duplicates_from_earlier_calls(self):
        controller = AnswerAdmissionController()
        assert controller.admit("q", 0, "token-0").admitted
        assert controller.admit_batch("q", [(0, "token-0"), (0, "token-1")]) == [
            False,
            True,
        ]
        assert controller.duplicates_rejected == 1

    def test_batch_rate_limit_in_order(self):
        batched = AnswerAdmissionController(max_answers_per_epoch=3)
        reference = AnswerAdmissionController(max_answers_per_epoch=3)
        items = [(0, f"token-{i}") for i in range(6)]
        assert batched.admit_batch("q", items) == [
            reference.admit("q", e, t).admitted for e, t in items
        ]
        assert batched.rate_limited == reference.rate_limited == 3

    def test_empty_batch(self):
        controller = AnswerAdmissionController()
        assert controller.admit_batch("q", []) == []
