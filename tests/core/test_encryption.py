"""Tests for answer encoding and XOR share splitting (Step III)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AnswerCodec
from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator


@pytest.fixture
def codec() -> AnswerCodec:
    return AnswerCodec()


class TestAnswerCodec:
    def test_encode_decode_roundtrip(self, codec):
        answer = QueryAnswer(query_id="analyst-00000001", bits=(0, 1, 0, 0, 1), epoch=3)
        decoded = codec.decode(codec.encode(answer))
        assert decoded.query_id == answer.query_id
        assert decoded.bits == answer.bits
        assert decoded.epoch == 3

    def test_encode_packs_bits_compactly(self, codec):
        answer = QueryAnswer(query_id="q", bits=tuple([0, 1] * 6))
        message = codec.encode(answer)
        # header (11 bytes) + qid (1) + empty token (0) + ceil(12 / 8) = 2 bytes of bits
        assert len(message) == 11 + 1 + 2

    def test_token_roundtrip(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1, 0), epoch=2, token="abc123" * 4)
        decoded = codec.decode(codec.encode(answer))
        assert decoded.token == "abc123" * 4

    def test_overlong_token_rejected(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1,), token="x" * 300)
        with pytest.raises(ValueError):
            codec.encode(answer)

    def test_decode_rejects_truncated_message(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1, 0, 1))
        message = codec.encode(answer)
        with pytest.raises(ValueError):
            codec.decode(message[:5])

    def test_decode_rejects_bad_magic(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1,))
        message = bytearray(codec.encode(answer))
        message[0] = 0xFF
        with pytest.raises(ValueError):
            codec.decode(bytes(message))

    def test_encrypt_produces_one_share_per_proxy(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1, 0, 1, 1))
        encrypted = codec.encrypt(answer, num_proxies=3, keystream=KeystreamGenerator(seed=b"k"))
        assert encrypted.num_shares == 3
        assert len({s.message_id for s in encrypted.shares}) == 1

    def test_encrypt_requires_two_proxies(self, codec):
        with pytest.raises(ValueError):
            codec.encrypt(QueryAnswer(query_id="q", bits=(1,)), num_proxies=1)

    def test_decrypt_roundtrip(self, codec):
        answer = QueryAnswer(query_id="analyst-00000042", bits=(1, 1, 0, 0, 0, 1), epoch=9)
        encrypted = codec.encrypt(answer, num_proxies=2, keystream=KeystreamGenerator(seed=b"k"))
        decrypted = codec.decrypt(list(encrypted.shares))
        assert decrypted == QueryAnswer(query_id=answer.query_id, bits=answer.bits, epoch=9)

    def test_shares_are_not_the_plaintext(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1, 0) * 20)
        message = codec.encode(answer)
        encrypted = codec.encrypt(answer, num_proxies=2, keystream=KeystreamGenerator(seed=b"z"))
        for share in encrypted.shares:
            assert share.payload != message

    def test_share_for_proxy(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1,))
        encrypted = codec.encrypt(answer, num_proxies=2)
        assert encrypted.share_for_proxy(0).index == 0
        assert encrypted.share_for_proxy(1).index == 1
        with pytest.raises(IndexError):
            encrypted.share_for_proxy(2)

    def test_total_bytes(self, codec):
        answer = QueryAnswer(query_id="q", bits=(1, 0, 1))
        encrypted = codec.encrypt(answer, num_proxies=2)
        assert encrypted.total_bytes() == sum(s.size_bytes() for s in encrypted.shares)

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=128),
        epoch=st.integers(min_value=0, max_value=2**31 - 1),
        num_proxies=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_encrypt_decrypt_roundtrip_property(self, bits, epoch, num_proxies):
        """Invariant: encrypt followed by decrypt recovers the exact answer."""
        codec = AnswerCodec()
        answer = QueryAnswer(query_id="analyst-x-00001234", bits=tuple(bits), epoch=epoch)
        encrypted = codec.encrypt(
            answer, num_proxies=num_proxies, keystream=KeystreamGenerator(seed=b"prop")
        )
        decrypted = codec.decrypt(list(encrypted.shares))
        assert decrypted.bits == answer.bits
        assert decrypted.query_id == answer.query_id
        assert decrypted.epoch == epoch
