"""Property-based tests on the core invariants (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    AnswerSpec,
    RangeBuckets,
    RandomizedResponder,
    estimate_true_yes,
    zero_knowledge_epsilon,
    randomized_response_epsilon,
)
from repro.core.encryption import AnswerCodec
from repro.core.query import QueryAnswer
from repro.core.sampling import estimate_sum
from repro.crypto.prng import KeystreamGenerator


class TestEndToEndEncodingProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=200.0, allow_nan=False), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_answer_vectors_are_one_hot_for_in_range_values(self, values):
        buckets = RangeBuckets.uniform(0.0, 200.0, 10, open_ended=True)
        spec = AnswerSpec(buckets=buckets)
        for value in values:
            vector = spec.encode_value(value)
            assert sum(vector) == 1
            assert len(vector) == buckets.num_buckets

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64),
        num_proxies=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_pipeline_encoding_is_lossless(self, bits, num_proxies):
        """Client-side encode+encrypt then aggregator-side decrypt+decode is identity."""
        codec = AnswerCodec()
        answer = QueryAnswer(query_id="analyst-00000000", bits=tuple(bits), epoch=1)
        encrypted = codec.encrypt(
            answer, num_proxies=num_proxies, keystream=KeystreamGenerator(seed=b"pp")
        )
        assert codec.decrypt(list(encrypted.shares)).bits == tuple(bits)


class TestEstimatorProperties:
    @given(
        p=st.floats(min_value=0.1, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        total=st.integers(min_value=1, max_value=10_000),
        yes_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_rr_estimator_is_exact_on_expectations(self, p, q, total, yes_fraction):
        true_yes = round(total * yes_fraction)
        expected_observed = true_yes * (p + (1 - p) * q) + (total - true_yes) * (1 - p) * q
        assert abs(estimate_true_yes(expected_observed, total, p, q) - true_yes) < 1e-6

    @given(
        p=st.floats(min_value=0.05, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=100, deadline=None)
    def test_rr_response_probabilities_are_valid(self, p, q):
        responder = RandomizedResponder(p=p, q=q)
        for bit in (0, 1):
            probability = responder.response_probability(bit)
            assert 0.0 <= probability <= 1.0
        assert responder.response_probability(1) >= responder.response_probability(0)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=200),
        extra=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_sampling_estimate_interval_is_symmetric(self, values, extra):
        import math

        estimate = estimate_sum(values, population_size=len(values) + extra)
        if not math.isfinite(estimate.error_bound):
            # A single-observation sample has an unbounded interval on both sides.
            assert estimate.upper == float("inf") and estimate.lower == float("-inf")
            return
        assert (estimate.upper - estimate.estimate) - (
            estimate.estimate - estimate.lower
        ) < 1e-9 * max(1.0, abs(estimate.estimate))


class TestPrivacyProperties:
    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
        s=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_zero_knowledge_never_weaker_than_dp(self, p, q, s):
        """The headline claim: sampling + RR is at least as private as RR alone."""
        assert zero_knowledge_epsilon(p, q, s) <= randomized_response_epsilon(p, q) + 1e-12

    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
        s_low=st.floats(min_value=0.0, max_value=1.0),
        s_high=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_less_sampling_is_more_private(self, p, q, s_low, s_high):
        low, high = sorted((s_low, s_high))
        assert zero_knowledge_epsilon(p, q, low) <= zero_knowledge_epsilon(p, q, high) + 1e-12


class TestRandomizedVectorProperties:
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=32),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_randomized_vector_is_binary_and_same_length(self, bits, seed):
        responder = RandomizedResponder(p=0.5, q=0.5, rng=random.Random(seed))
        randomized = responder.randomize_vector(bits)
        assert len(randomized) == len(bits)
        assert all(bit in (0, 1) for bit in randomized)
