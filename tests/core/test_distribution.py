"""Tests for query distribution through the proxies."""

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    Client,
    ClientConfig,
    ExecutionParameters,
    QueryBudget,
    QueryDistributor,
    RangeBuckets,
)
from repro.pubsub import BrokerCluster


SPEC = AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True))


@pytest.fixture
def distributor() -> QueryDistributor:
    return QueryDistributor(cluster=BrokerCluster(num_brokers=2))


@pytest.fixture
def analyst() -> Analyst:
    return Analyst(analyst_id="acme", signing_key=b"acme-key")


def make_client(client_id: str = "c-1") -> Client:
    client = Client(ClientConfig(client_id=client_id, seed=1))
    client.create_table([("value", "REAL")])
    return client


class TestPublishing:
    def test_publish_signed_query(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        announcement = distributor.publish(query, QueryBudget())
        assert announcement.query.query_id == query.query_id
        assert distributor.queries_published == 1

    def test_unsigned_query_rejected(self, distributor):
        from repro.core.query import Query

        query = Query(query_id="q", sql="SELECT value FROM private_data", answer_spec=SPEC)
        with pytest.raises(ValueError):
            distributor.publish(query, QueryBudget())

    def test_explicit_parameters_bypass_planner(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        params = ExecutionParameters(sampling_fraction=0.5, p=0.5, q=0.5)
        announcement = distributor.publish(query, QueryBudget(), parameters=params)
        assert announcement.parameters == params

    def test_planner_used_when_parameters_omitted(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        announcement = distributor.publish(query, QueryBudget(max_epsilon=1.0))
        assert announcement.parameters.epsilon_zk <= 1.0 + 1e-6


class TestClientDelivery:
    def test_client_receives_and_subscribes(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        client = make_client()
        feed = distributor.make_subscription_feed(client.config.client_id)
        distributor.publish(query, QueryBudget())
        accepted = QueryDistributor.deliver_to_client(
            client, feed, {"acme": analyst.signing_key}
        )
        assert len(accepted) == 1
        assert client.subscribed_query_ids == [query.query_id]

    def test_unknown_analyst_is_ignored(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        client = make_client()
        feed = distributor.make_subscription_feed(client.config.client_id)
        distributor.publish(query, QueryBudget())
        accepted = QueryDistributor.deliver_to_client(client, feed, {})
        assert accepted == []
        assert client.subscribed_query_ids == []

    def test_forged_signature_is_ignored(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        client = make_client()
        feed = distributor.make_subscription_feed(client.config.client_id)
        distributor.publish(query, QueryBudget())
        accepted = QueryDistributor.deliver_to_client(client, feed, {"acme": b"wrong-key"})
        assert accepted == []

    def test_multiple_clients_receive_the_same_query(self, distributor, analyst):
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        clients = [make_client(f"c-{i}") for i in range(5)]
        feeds = [distributor.make_subscription_feed(c.config.client_id) for c in clients]
        distributor.publish(query, QueryBudget())
        for client, feed in zip(clients, feeds):
            QueryDistributor.deliver_to_client(client, feed, {"acme": analyst.signing_key})
        assert all(c.subscribed_query_ids == [query.query_id] for c in clients)

    def test_feed_only_delivers_new_announcements(self, distributor, analyst):
        client = make_client()
        feed = distributor.make_subscription_feed(client.config.client_id)
        first = analyst.create_query("SELECT value FROM private_data", SPEC)
        distributor.publish(first, QueryBudget())
        QueryDistributor.deliver_to_client(client, feed, {"acme": analyst.signing_key})
        second = analyst.create_query("SELECT value FROM private_data LIMIT 1", SPEC)
        distributor.publish(second, QueryBudget())
        accepted = QueryDistributor.deliver_to_client(client, feed, {"acme": analyst.signing_key})
        assert [a.query.query_id for a in accepted] == [second.query_id]
        assert set(client.subscribed_query_ids) == {first.query_id, second.query_id}


class TestSystemIntegration:
    def test_system_distributes_queries_via_proxies(self):
        from repro.core import PrivApproxSystem, SystemConfig

        system = PrivApproxSystem(
            SystemConfig(num_clients=10, seed=3, distribute_queries_via_proxies=True)
        )
        system.provision_clients([("value", "REAL")], lambda i: [{"value": 0.5}])
        analyst = Analyst("acme", signing_key=b"k")
        query = analyst.create_query("SELECT value FROM private_data", SPEC)
        system.submit_query(analyst, query, QueryBudget())
        assert system.query_distributor.queries_published == 1
        assert all(query.query_id in c.subscribed_query_ids for c in system.clients)
