"""Tests for the randomized response mechanism and its estimator (Eqs. 5-6)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RandomizedResponder, estimate_true_yes, rr_accuracy_loss
from repro.core.randomized_response import (
    estimate_true_counts,
    simulate_randomized_survey,
)


class TestRandomizedResponder:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomizedResponder(p=0.0, q=0.5)
        with pytest.raises(ValueError):
            RandomizedResponder(p=0.5, q=1.5)

    def test_p_one_is_always_truthful(self):
        responder = RandomizedResponder(p=1.0, q=0.5, rng=random.Random(1))
        assert all(responder.randomize_bit(1) == 1 for _ in range(100))
        assert all(responder.randomize_bit(0) == 0 for _ in range(100))

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            RandomizedResponder(p=0.5, q=0.5).randomize_bit(2)

    def test_response_probabilities(self):
        responder = RandomizedResponder(p=0.6, q=0.3)
        assert responder.response_probability(1) == pytest.approx(0.6 + 0.4 * 0.3)
        assert responder.response_probability(0) == pytest.approx(0.4 * 0.3)

    def test_empirical_response_rates_match_probabilities(self):
        responder = RandomizedResponder(p=0.7, q=0.4, rng=random.Random(3))
        trials = 50_000
        yes_given_yes = sum(responder.randomize_bit(1) for _ in range(trials)) / trials
        yes_given_no = sum(responder.randomize_bit(0) for _ in range(trials)) / trials
        assert yes_given_yes == pytest.approx(responder.response_probability(1), abs=0.01)
        assert yes_given_no == pytest.approx(responder.response_probability(0), abs=0.01)

    def test_randomize_vector_length_preserved(self):
        responder = RandomizedResponder(p=0.5, q=0.5, rng=random.Random(5))
        vector = [0, 1, 0, 0, 1, 1, 0]
        assert len(responder.randomize_vector(vector)) == len(vector)

    def test_expected_yes(self):
        responder = RandomizedResponder(p=0.6, q=0.3)
        expected = responder.expected_yes(true_yes=600, total=1000)
        assert expected == pytest.approx(600 * 0.72 + 400 * 0.12)

    def test_expected_yes_invalid_input(self):
        with pytest.raises(ValueError):
            RandomizedResponder(p=0.6, q=0.3).expected_yes(true_yes=11, total=10)


class TestEstimator:
    def test_inverts_expected_value_exactly(self):
        """Plugging the expectation into Eq. 5 recovers the true count exactly."""
        p, q = 0.6, 0.3
        true_yes, total = 600, 1000
        responder = RandomizedResponder(p=p, q=q)
        expected_observed = responder.expected_yes(true_yes, total)
        assert estimate_true_yes(expected_observed, total, p, q) == pytest.approx(true_yes)

    def test_estimator_unbiased_empirically(self):
        rng = random.Random(7)
        p, q = 0.3, 0.6
        true_yes, total = 6_000, 10_000
        estimates = [
            simulate_randomized_survey(true_yes, total, p, q, rng)[1] for _ in range(30)
        ]
        mean_estimate = sum(estimates) / len(estimates)
        assert mean_estimate == pytest.approx(true_yes, rel=0.02)

    def test_estimate_true_counts_per_bucket(self):
        counts = estimate_true_counts([720, 120], total=1000, p=0.6, q=0.3)
        assert counts[0] == pytest.approx((720 - 0.12 * 1000) / 0.6)
        assert counts[1] == pytest.approx((120 - 0.12 * 1000) / 0.6)

    def test_estimator_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            estimate_true_yes(10, 100, p=0.0, q=0.5)

    def test_estimator_rejects_negative_total(self):
        with pytest.raises(ValueError):
            estimate_true_yes(10, -1, p=0.5, q=0.5)

    def test_accuracy_loss_matches_metric(self):
        assert rr_accuracy_loss(100.0, 97.0) == pytest.approx(0.03)

    @given(
        p=st.floats(min_value=0.2, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        yes_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimator_inverts_expectation_property(self, p, q, yes_fraction):
        total = 10_000
        true_yes = round(total * yes_fraction)
        expected_observed = true_yes * (p + (1 - p) * q) + (total - true_yes) * (1 - p) * q
        recovered = estimate_true_yes(expected_observed, total, p, q)
        assert recovered == pytest.approx(true_yes, abs=1e-6)


class TestPaperMicrobenchmarkShape:
    """Shape assertions corresponding to Table 1's utility column."""

    @pytest.mark.parametrize("p_low,p_high", [(0.3, 0.6), (0.6, 0.9)])
    def test_higher_p_gives_lower_accuracy_loss(self, p_low, p_high):
        total, yes_fraction, trials = 10_000, 0.6, 8

        def mean_loss(p: float) -> float:
            rng = random.Random(99)
            losses = []
            for _ in range(trials):
                true_yes = round(total * yes_fraction)
                _, estimate = simulate_randomized_survey(true_yes, total, p, 0.6, rng)
                losses.append(rr_accuracy_loss(true_yes, estimate))
            return sum(losses) / len(losses)

        assert mean_loss(p_high) < mean_loss(p_low)

    def test_q_close_to_yes_fraction_gives_best_utility(self):
        """Table 1 / Section 3.3.2: utility is best when q matches the Yes fraction.

        The effect is driven by the variance of the randomized "Yes" count, so
        the check compares the analytical estimator variance rather than a
        noisy Monte-Carlo mean.
        """
        total, p = 10_000, 0.3
        yes_fraction = 0.9
        true_yes = round(total * yes_fraction)

        def estimator_variance(q: float) -> float:
            prob_yes = p + (1 - p) * q
            prob_no = (1 - p) * q
            variance_observed = true_yes * prob_yes * (1 - prob_yes) + (
                total - true_yes
            ) * prob_no * (1 - prob_no)
            return variance_observed / (p * p)

        best = estimator_variance(0.9)
        assert best < estimator_variance(0.5)
        assert best < estimator_variance(0.1)

    def test_q_matching_effect_visible_in_simulation(self):
        """The same effect shows up empirically for a strongly skewed population."""
        total, p, trials = 10_000, 0.3, 20
        true_yes = 9_000
        rng = random.Random(123)

        def mean_loss(q: float) -> float:
            losses = []
            for _ in range(trials):
                _, estimate = simulate_randomized_survey(true_yes, total, p, q, rng)
                losses.append(rr_accuracy_loss(true_yes, estimate))
            return sum(losses) / len(losses)

        assert mean_loss(0.9) < mean_loss(0.1)


class TestBatchedRandomizeVector:
    """The batched vector path must be draw-compatible with the per-bit loop."""

    def test_batched_matches_scalar_reference(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 8
        batched = RandomizedResponder(p=0.7, q=0.4, rng=random.Random(42))
        scalar = RandomizedResponder(p=0.7, q=0.4, rng=random.Random(42))
        assert batched.randomize_vector(bits) == scalar.randomize_vector_scalar(bits)

    def test_batched_consumes_identical_draw_sequence(self):
        """After randomizing, both RNGs sit at exactly the same stream position."""
        bits = [1, 0, 0, 1, 1, 0, 1, 1, 0, 0]
        rng_a, rng_b = random.Random(7), random.Random(7)
        RandomizedResponder(p=0.6, q=0.3, rng=rng_a).randomize_vector(bits)
        RandomizedResponder(p=0.6, q=0.3, rng=rng_b).randomize_vector_scalar(bits)
        assert rng_a.getstate() == rng_b.getstate()

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=64), st.integers())
    @settings(max_examples=50, deadline=None)
    def test_property_equivalence(self, bits, seed):
        batched = RandomizedResponder(p=0.5, q=0.5, rng=random.Random(seed))
        scalar = RandomizedResponder(p=0.5, q=0.5, rng=random.Random(seed))
        assert batched.randomize_vector(bits) == scalar.randomize_vector_scalar(bits)

    def test_batched_rejects_non_binary_bits(self):
        responder = RandomizedResponder(p=0.9, q=0.5, rng=random.Random(1))
        with pytest.raises(ValueError):
            responder.randomize_vector([0, 1, 2])
