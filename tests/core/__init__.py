"""Tests for repro.core."""
