"""Tests for the execution-budget interface and the feedback planner."""

import pytest

from repro.core import BudgetPlanner, ExecutionParameters, QueryBudget
from repro.core.privacy import zero_knowledge_epsilon


class TestQueryBudget:
    def test_defaults_are_valid(self):
        budget = QueryBudget()
        assert budget.expected_clients == 10_000

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            QueryBudget(max_latency_seconds=0)
        with pytest.raises(ValueError):
            QueryBudget(target_accuracy_loss=1.5)
        with pytest.raises(ValueError):
            QueryBudget(max_epsilon=0)
        with pytest.raises(ValueError):
            QueryBudget(expected_clients=0)
        with pytest.raises(ValueError):
            QueryBudget(answer_bits=0)


class TestExecutionParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExecutionParameters(sampling_fraction=0.0, p=0.5, q=0.5)
        with pytest.raises(ValueError):
            ExecutionParameters(sampling_fraction=0.5, p=0.0, q=0.5)
        with pytest.raises(ValueError):
            ExecutionParameters(sampling_fraction=0.5, p=0.5, q=1.5)

    def test_epsilon_property(self):
        params = ExecutionParameters(sampling_fraction=0.6, p=0.6, q=0.6)
        assert params.epsilon_zk == pytest.approx(zero_knowledge_epsilon(0.6, 0.6, 0.6))

    def test_with_helpers(self):
        params = ExecutionParameters(sampling_fraction=0.5, p=0.5, q=0.5)
        assert params.with_sampling_fraction(0.9).sampling_fraction == 0.9
        assert params.with_p(0.8).p == 0.8


class TestBudgetPlanner:
    def test_default_plan_without_constraints(self):
        planner = BudgetPlanner()
        params = planner.plan(QueryBudget())
        assert params == planner.default_parameters

    def test_privacy_budget_is_respected(self):
        planner = BudgetPlanner()
        budget = QueryBudget(max_epsilon=1.0)
        params = planner.plan(budget)
        assert params.epsilon_zk <= 1.0 + 1e-6

    def test_tighter_privacy_budget_means_smaller_p(self):
        planner = BudgetPlanner()
        loose = planner.plan(QueryBudget(max_epsilon=3.0))
        tight = planner.plan(QueryBudget(max_epsilon=0.5))
        assert tight.p < loose.p
        assert tight.epsilon_zk <= 0.5 + 1e-6

    def test_extremely_tight_privacy_shrinks_sampling(self):
        planner = BudgetPlanner()
        params = planner.plan(QueryBudget(max_epsilon=0.01))
        assert params.epsilon_zk <= 0.011
        assert params.sampling_fraction < planner.default_parameters.sampling_fraction

    def test_latency_budget_shrinks_sampling_fraction(self):
        planner = BudgetPlanner()
        # A very large population with a tight SLA forces a low sampling fraction.
        relaxed = planner.plan(QueryBudget(expected_clients=50_000_000, max_latency_seconds=3600))
        tight = planner.plan(QueryBudget(expected_clients=50_000_000, max_latency_seconds=5))
        assert tight.sampling_fraction < relaxed.sampling_fraction

    def test_accuracy_target_raises_parameters(self):
        planner = BudgetPlanner()
        params = planner.plan(QueryBudget(target_accuracy_loss=0.005))
        assert params.p >= 0.9
        assert params.sampling_fraction >= 0.9

    def test_privacy_takes_priority_over_accuracy(self):
        planner = BudgetPlanner()
        params = planner.plan(QueryBudget(max_epsilon=0.8, target_accuracy_loss=0.005))
        assert params.epsilon_zk <= 0.8 + 1e-6


class TestFeedbackRetuning:
    def test_error_above_target_grows_sampling(self):
        planner = BudgetPlanner()
        params = ExecutionParameters(sampling_fraction=0.5, p=0.6, q=0.6)
        retuned = planner.retune(params, observed_relative_error=0.2, target_accuracy_loss=0.05)
        assert retuned.sampling_fraction > params.sampling_fraction

    def test_error_above_target_with_full_sampling_grows_p(self):
        planner = BudgetPlanner()
        params = ExecutionParameters(sampling_fraction=1.0, p=0.6, q=0.6)
        retuned = planner.retune(params, observed_relative_error=0.2, target_accuracy_loss=0.05)
        assert retuned.p > params.p

    def test_error_well_below_target_shrinks_sampling(self):
        planner = BudgetPlanner()
        params = ExecutionParameters(sampling_fraction=0.8, p=0.6, q=0.6)
        retuned = planner.retune(params, observed_relative_error=0.001, target_accuracy_loss=0.1)
        assert retuned.sampling_fraction < params.sampling_fraction

    def test_error_within_band_keeps_parameters(self):
        planner = BudgetPlanner()
        params = ExecutionParameters(sampling_fraction=0.8, p=0.6, q=0.6)
        assert planner.retune(params, 0.08, 0.1) == params

    def test_invalid_inputs_rejected(self):
        planner = BudgetPlanner()
        params = ExecutionParameters(sampling_fraction=0.8, p=0.6, q=0.6)
        with pytest.raises(ValueError):
            planner.retune(params, -0.1, 0.1)
        with pytest.raises(ValueError):
            planner.retune(params, 0.1, 0.0)


class TestBatchSamplingFraction:
    def test_no_cost_budget_means_full_scan(self):
        planner = BudgetPlanner()
        assert planner.batch_sampling_fraction(QueryBudget(), stored_answers=1_000) == 1.0

    def test_cost_budget_limits_fraction(self):
        planner = BudgetPlanner()
        budget = QueryBudget(max_cost_units=100)
        assert planner.batch_sampling_fraction(budget, stored_answers=1_000) == pytest.approx(0.1)

    def test_fraction_never_below_minimum(self):
        planner = BudgetPlanner()
        budget = QueryBudget(max_cost_units=1)
        assert planner.batch_sampling_fraction(budget, stored_answers=10_000) == planner.min_sampling_fraction

    def test_invalid_stored_answers(self):
        with pytest.raises(ValueError):
            BudgetPlanner().batch_sampling_fraction(QueryBudget(), stored_answers=0)
