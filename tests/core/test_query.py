"""Tests for the query model: buckets, answer vectors, signing."""

import pytest

from repro.core import AnswerSpec, Query, RangeBuckets, RuleBuckets
from repro.core.query import QueryAnswer, make_query_id


class TestRangeBuckets:
    def test_paper_speed_example(self):
        """The 12-bucket driving-speed example from Section 2.2."""
        buckets = RangeBuckets(
            boundaries=(0.0, 1.0, 11.0, 21.0, 31.0, 41.0, 51.0, 61.0, 71.0, 81.0, 91.0, 101.0),
            open_ended=True,
        )
        assert buckets.num_buckets == 12
        # A vehicle moving at 15 mph answers '1' for the third bucket.
        vector = buckets.encode(15)
        assert vector[2] == 1
        assert sum(vector) == 1

    def test_bucket_boundaries_are_half_open(self):
        buckets = RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=False)
        assert buckets.bucket_of(0.0) == 0
        assert buckets.bucket_of(0.999) == 0
        assert buckets.bucket_of(1.0) == 1
        assert buckets.bucket_of(2.0) is None

    def test_open_ended_tail(self):
        buckets = RangeBuckets(boundaries=(0.0, 10.0), open_ended=True)
        assert buckets.bucket_of(1e9) == 1
        assert buckets.num_buckets == 2

    def test_below_range_returns_none(self):
        buckets = RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)
        assert buckets.bucket_of(-0.5) is None

    def test_non_numeric_and_none_values(self):
        buckets = RangeBuckets(boundaries=(0.0, 1.0))
        assert buckets.bucket_of("not a number") is None
        assert buckets.bucket_of(None) is None
        assert buckets.bucket_of(float("nan")) is None

    def test_encode_all_zero_for_unbucketable_value(self):
        buckets = RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=False)
        assert buckets.encode(99.0) == [0, 0]

    def test_uniform_constructor(self):
        buckets = RangeBuckets.uniform(0.0, 3.0, 6)
        assert buckets.num_buckets == 6
        assert buckets.bucket_of(2.9) == 5

    def test_labels(self):
        buckets = RangeBuckets(boundaries=(0.0, 1.0), open_ended=True)
        assert buckets.labels() == ["[0.0, 1.0)", "[1.0, +inf)"]

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            RangeBuckets(boundaries=(1.0,))
        with pytest.raises(ValueError):
            RangeBuckets(boundaries=(0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            RangeBuckets(boundaries=(2.0, 1.0))

    def test_uniform_invalid_arguments(self):
        with pytest.raises(ValueError):
            RangeBuckets.uniform(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            RangeBuckets.uniform(1.0, 0.0, 3)


class TestRuleBuckets:
    def test_regex_rules(self):
        buckets = RuleBuckets.from_patterns([("chrome", "Chrome"), ("firefox", "Firefox")])
        assert buckets.bucket_of("Chrome 99 on Linux") == 0
        assert buckets.bucket_of("Firefox/101") == 1
        assert buckets.bucket_of("Safari") is None

    def test_first_matching_rule_wins(self):
        buckets = RuleBuckets.from_patterns([("any", "."), ("specific", "abc")])
        assert buckets.bucket_of("abc") == 0

    def test_from_values_exact_match(self):
        buckets = RuleBuckets.from_values(["yes", "no"])
        assert buckets.bucket_of("yes") == 0
        assert buckets.bucket_of("no") == 1
        assert buckets.bucket_of("yes!") is None

    def test_callable_rules(self):
        buckets = RuleBuckets(rules=(("even", lambda v: v % 2 == 0), ("odd", lambda v: v % 2 == 1)))
        assert buckets.bucket_of(4) == 0
        assert buckets.bucket_of(3) == 1

    def test_none_value(self):
        assert RuleBuckets.from_values(["x"]).bucket_of(None) is None

    def test_labels(self):
        assert RuleBuckets.from_values(["a", "b"]).labels() == ["a", "b"]

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            RuleBuckets(rules=())


class TestQueryAnswer:
    def test_valid_answer(self):
        answer = QueryAnswer(query_id="q", bits=(0, 1, 0))
        assert answer.num_buckets == 3
        assert answer.as_list() == [0, 1, 0]

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            QueryAnswer(query_id="q", bits=(0, 2))


class TestQuery:
    def _query(self) -> Query:
        return Query(
            query_id="analyst-00000001",
            sql="SELECT speed FROM vehicle WHERE location = 'San Francisco'",
            answer_spec=AnswerSpec(
                buckets=RangeBuckets(boundaries=(0.0, 10.0, 20.0), open_ended=True),
                value_column="speed",
            ),
            frequency_seconds=10.0,
            window_seconds=600.0,
            slide_seconds=60.0,
        )

    def test_num_buckets(self):
        assert self._query().num_buckets == 3

    def test_encode_value(self):
        assert self._query().encode_value(15.0) == [0, 1, 0]

    def test_sign_and_verify(self):
        signed = self._query().sign(b"key")
        assert signed.signature is not None
        assert signed.verify_signature(b"key")
        assert not signed.verify_signature(b"wrong-key")

    def test_unsigned_query_fails_verification(self):
        assert not self._query().verify_signature(b"key")

    def test_signature_covers_sql(self):
        signed = self._query().sign(b"key")
        tampered = Query(
            query_id=signed.query_id,
            sql="SELECT salary FROM employees",
            answer_spec=signed.answer_spec,
            frequency_seconds=signed.frequency_seconds,
            window_seconds=signed.window_seconds,
            slide_seconds=signed.slide_seconds,
            analyst_id=signed.analyst_id,
            signature=signed.signature,
        )
        assert not tampered.verify_signature(b"key")

    def test_invalid_window_parameters_rejected(self):
        spec = AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0)))
        with pytest.raises(ValueError):
            Query("q", "SELECT a FROM t", spec, frequency_seconds=0)
        with pytest.raises(ValueError):
            Query("q", "SELECT a FROM t", spec, window_seconds=0)
        with pytest.raises(ValueError):
            Query("q", "SELECT a FROM t", spec, window_seconds=10, slide_seconds=20)

    def test_make_query_id(self):
        assert make_query_id("acme", 7) == "acme-00000007"
        with pytest.raises(ValueError):
            make_query_id("acme", -1)


class TestAnswerSpec:
    def test_value_column_passthrough(self):
        spec = AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True), value_column="kwh"
        )
        assert spec.num_buckets == 2
        assert spec.encode_value(0.4) == [1, 0]
        assert spec.labels() == ["[0.0, 1.0)", "[1.0, +inf)"]
