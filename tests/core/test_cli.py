"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_arguments(self):
        args = build_parser().parse_args(["plan", "--accuracy-loss", "0.05", "--clients", "123"])
        assert args.command == "plan"
        assert args.accuracy_loss == 0.05
        assert args.clients == 123

    def test_privacy_requires_parameters(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["privacy", "-p", "0.5"])


class TestCommands:
    def test_plan(self, capsys):
        assert main(["plan", "--accuracy-loss", "0.05", "--epsilon", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "sampling fraction" in out
        assert "zero-knowledge privacy level" in out

    def test_privacy(self, capsys):
        assert main(["privacy", "-s", "0.6", "-p", "0.6", "-q", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "epsilon_dp" in out and "epsilon_zk" in out

    def test_simulate_small(self, capsys):
        code = main(
            [
                "simulate",
                "--clients", "60",
                "--epochs", "1",
                "--buckets", "4",
                "-s", "1.0",
                "-p", "1.0",
                "-q", "0.5",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy loss" in out
        assert "bucket" in out

    def test_simulate_multi_query(self, capsys):
        """--queries N serves every query from one shared answering pass."""
        code = main(
            [
                "simulate",
                "--clients", "60",
                "--epochs", "1",
                "--buckets", "4",
                "--queries", "3",
                "-s", "1.0",
                "-p", "1.0",
                "-q", "0.5",
                "--seed", "3",
                "--executor", "sharded",
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("accuracy loss") == 3
        assert "query 3/3" in out

    def test_simulate_rejects_zero_queries(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--clients", "10", "--queries", "0"])

    def test_taxi_small(self, capsys):
        assert main(["taxi", "--clients", "80", "-s", "1.0", "-p", "1.0", "-q", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "accuracy loss" in out

    def test_electricity_small(self, capsys):
        assert (
            main(["electricity", "--clients", "80", "-s", "1.0", "-p", "1.0", "-q", "0.5"]) == 0
        )
        out = capsys.readouterr().out
        assert "epsilon_zk" in out

    def test_crypto_table(self, capsys):
        assert main(["crypto-table"]) == 0
        out = capsys.readouterr().out
        assert "PrivApprox (XOR)" in out
        assert "Paillier" in out
