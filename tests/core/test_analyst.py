"""Tests for the analyst interface."""

import pytest

from repro.core import Analyst, AnswerSpec, QueryBudget, RangeBuckets


@pytest.fixture
def analyst() -> Analyst:
    return Analyst(analyst_id="acme", signing_key=b"secret")


SPEC = AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0), open_ended=True))


class TestQueryCreation:
    def test_query_ids_are_serial(self, analyst):
        first = analyst.create_query("SELECT a FROM t", SPEC)
        second = analyst.create_query("SELECT b FROM t", SPEC)
        assert first.query_id == "acme-00000000"
        assert second.query_id == "acme-00000001"

    def test_queries_are_signed(self, analyst):
        query = analyst.create_query("SELECT a FROM t", SPEC)
        assert query.verify_signature(b"secret")
        assert not query.verify_signature(b"forged")

    def test_window_parameters_forwarded(self, analyst):
        query = analyst.create_query(
            "SELECT a FROM t", SPEC, frequency_seconds=5.0, window_seconds=600.0, slide_seconds=60.0
        )
        assert query.frequency_seconds == 5.0
        assert query.window_seconds == 600.0
        assert query.slide_seconds == 60.0


class TestBudgetsAndResults:
    def test_attach_and_retrieve_budget(self, analyst):
        query = analyst.create_query("SELECT a FROM t", SPEC)
        budget = QueryBudget(target_accuracy_loss=0.05)
        analyst.attach_budget(query, budget)
        assert analyst.budget_for(query.query_id) is budget

    def test_budget_for_unknown_query_rejected(self, analyst):
        with pytest.raises(KeyError):
            analyst.budget_for("missing")

    def test_result_delivery_order(self, analyst):
        query = analyst.create_query("SELECT a FROM t", SPEC)
        analyst.deliver_result(query.query_id, "window-1")
        analyst.deliver_result(query.query_id, "window-2")
        assert analyst.results_for(query.query_id) == ["window-1", "window-2"]
        assert analyst.latest_result(query.query_id) == "window-2"

    def test_latest_result_none_when_empty(self, analyst):
        assert analyst.latest_result("whatever") is None

    def test_results_are_isolated_per_query(self, analyst):
        first = analyst.create_query("SELECT a FROM t", SPEC)
        second = analyst.create_query("SELECT b FROM t", SPEC)
        analyst.deliver_result(first.query_id, "r1")
        assert analyst.results_for(second.query_id) == []
