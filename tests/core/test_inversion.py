"""Tests for the query inversion mechanism (Section 3.3.2)."""

import random

import pytest

from repro.core import InvertedEstimator, invert_answer_vector, should_invert
from repro.core.randomized_response import RandomizedResponder, estimate_true_yes
from repro.analytics import accuracy_loss


class TestShouldInvert:
    def test_invert_when_yes_fraction_far_below_q(self):
        # q = 0.6, yes fraction 0.1: the "No" fraction (0.9) is closer to q? No —
        # |0.9 - 0.6| = 0.3 < |0.1 - 0.6| = 0.5, so inversion helps.
        assert should_invert(expected_yes_fraction=0.1, q=0.6)

    def test_no_inversion_when_yes_fraction_matches_q(self):
        assert not should_invert(expected_yes_fraction=0.6, q=0.6)

    def test_symmetric_case_prefers_native(self):
        assert not should_invert(expected_yes_fraction=0.5, q=0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            should_invert(1.5, 0.5)
        with pytest.raises(ValueError):
            should_invert(0.5, -0.1)


class TestInvertAnswerVector:
    def test_inversion(self):
        assert invert_answer_vector([1, 0, 1, 1]) == [0, 1, 0, 0]

    def test_involution(self):
        bits = [0, 1, 1, 0, 1]
        assert invert_answer_vector(invert_answer_vector(bits)) == bits

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            invert_answer_vector([0, 2])


class TestInvertedEstimator:
    def test_estimate_inverts_back(self):
        """Feeding the expected inverted response count recovers the Yes count."""
        p, q = 0.9, 0.6
        total, true_yes = 10_000, 1_000
        true_no = total - true_yes
        expected_inverted_yes = true_no * (p + (1 - p) * q) + true_yes * (1 - p) * q
        estimator = InvertedEstimator(p=p, q=q)
        assert estimator.estimate_yes(expected_inverted_yes, total) == pytest.approx(true_yes)

    def test_estimate_counts_per_bucket(self):
        estimator = InvertedEstimator(p=0.9, q=0.6)
        estimates = estimator.estimate_yes_counts([5_000.0, 9_000.0], total=10_000)
        assert len(estimates) == 2

    def test_inversion_improves_utility_for_rare_yes(self):
        """Figure 5(a): with a 10% Yes fraction, the inverted query is far more accurate."""
        rng = random.Random(41)
        p, q = 0.9, 0.6
        total, true_yes = 10_000, 1_000
        trials = 20

        def native_loss() -> float:
            responder = RandomizedResponder(p=p, q=q, rng=rng)
            observed = sum(responder.randomize_bit(1) for _ in range(true_yes)) + sum(
                responder.randomize_bit(0) for _ in range(total - true_yes)
            )
            return accuracy_loss(true_yes, estimate_true_yes(observed, total, p, q))

        def inverted_loss() -> float:
            responder = RandomizedResponder(p=p, q=q, rng=rng)
            # Clients answer the inverted question: truthful "Yes" becomes 0.
            observed = sum(responder.randomize_bit(0) for _ in range(true_yes)) + sum(
                responder.randomize_bit(1) for _ in range(total - true_yes)
            )
            estimator = InvertedEstimator(p=p, q=q)
            return accuracy_loss(true_yes, estimator.estimate_yes(observed, total))

        native = sum(native_loss() for _ in range(trials)) / trials
        inverted = sum(inverted_loss() for _ in range(trials)) / trials
        assert inverted < native
