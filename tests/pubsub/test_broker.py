"""Tests for brokers and broker clusters."""

import pytest

from repro.pubsub import BrokerCluster, Record
from repro.pubsub.errors import PubSubError, UnknownTopicError


class TestBrokerCluster:
    def test_create_topic(self):
        cluster = BrokerCluster(num_brokers=2)
        cluster.create_topic("answers", num_partitions=4)
        assert cluster.topic_names() == ["answers"]
        assert cluster.topic("answers").num_partitions == 4

    def test_duplicate_topic_rejected(self):
        cluster = BrokerCluster()
        cluster.create_topic("t")
        with pytest.raises(PubSubError):
            cluster.create_topic("t")

    def test_ensure_topic_is_idempotent(self):
        cluster = BrokerCluster()
        first = cluster.ensure_topic("t", 2)
        second = cluster.ensure_topic("t", 2)
        assert first is second

    def test_unknown_topic_rejected(self):
        with pytest.raises(UnknownTopicError):
            BrokerCluster().topic("missing")

    def test_publish_and_fetch(self):
        cluster = BrokerCluster(num_brokers=2)
        cluster.create_topic("t", num_partitions=1)
        cluster.publish("t", Record(value="hello"))
        records = cluster.fetch("t", partition_index=0, offset=0)
        assert [r.value for r in records] == ["hello"]

    def test_partition_leaders_are_balanced(self):
        cluster = BrokerCluster(num_brokers=2)
        cluster.create_topic("t", num_partitions=4)
        leaders = [cluster.leader_for("t", i).broker_id for i in range(4)]
        assert leaders == [0, 1, 0, 1]

    def test_leader_accounting(self):
        cluster = BrokerCluster(num_brokers=2)
        cluster.create_topic("t", num_partitions=2)
        for i in range(10):
            cluster.publish("t", Record(value=i, key=str(i)))
        handled = sum(b.records_handled for b in cluster.brokers)
        assert handled == 10
        assert cluster.total_records() == 10

    def test_reset_metrics(self):
        cluster = BrokerCluster(num_brokers=1)
        cluster.create_topic("t")
        cluster.publish("t", Record(value="x"))
        cluster.reset_metrics()
        assert all(b.records_handled == 0 for b in cluster.brokers)
        # The stored records remain; only the counters reset.
        assert cluster.total_records() == 1

    def test_needs_at_least_one_broker(self):
        with pytest.raises(PubSubError):
            BrokerCluster(num_brokers=0)

    def test_total_bytes_grows_with_messages(self):
        cluster = BrokerCluster()
        cluster.create_topic("t")
        before = cluster.total_bytes()
        cluster.publish("t", Record(value=b"x" * 100))
        assert cluster.total_bytes() > before
