"""Tests for repro.pubsub."""
