"""Tests for topics and partitions."""

import pytest

from repro.pubsub import Partition, Record, Topic
from repro.pubsub.errors import UnknownPartitionError


class TestPartition:
    def test_append_assigns_offsets(self):
        partition = Partition(topic_name="t", index=0)
        first = partition.append(Record(value="a"))
        second = partition.append(Record(value="b"))
        assert (first.offset, second.offset) == (0, 1)
        assert first.topic == "t" and first.partition == 0

    def test_read_from_offset(self):
        partition = Partition(topic_name="t", index=0)
        for i in range(5):
            partition.append(Record(value=i))
        values = [r.value for r in partition.read(offset=2)]
        assert values == [2, 3, 4]

    def test_read_with_max_records(self):
        partition = Partition(topic_name="t", index=0)
        for i in range(5):
            partition.append(Record(value=i))
        assert len(partition.read(offset=0, max_records=3)) == 3

    def test_read_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Partition(topic_name="t", index=0).read(offset=-1)

    def test_end_offset(self):
        partition = Partition(topic_name="t", index=0)
        assert partition.end_offset == 0
        partition.append(Record(value="x"))
        assert partition.end_offset == 1

    def test_total_bytes_positive(self):
        partition = Partition(topic_name="t", index=0)
        partition.append(Record(value=b"12345678"))
        assert partition.total_bytes() >= 8


class TestTopic:
    def test_requires_at_least_one_partition(self):
        with pytest.raises(ValueError):
            Topic(name="t", num_partitions=0)

    def test_keyed_records_go_to_stable_partition(self):
        topic = Topic(name="t", num_partitions=4)
        partitions = {topic.partition_for("answer-123", i) for i in range(10)}
        assert len(partitions) == 1

    def test_unkeyed_records_round_robin(self):
        topic = Topic(name="t", num_partitions=3)
        partitions = [topic.partition_for(None, i) for i in range(6)]
        assert partitions == [0, 1, 2, 0, 1, 2]

    def test_append_routes_by_key(self):
        topic = Topic(name="t", num_partitions=4)
        record = topic.append(Record(value="v", key="stable-key"))
        again = topic.append(Record(value="w", key="stable-key"))
        assert record.partition == again.partition

    def test_unknown_partition_rejected(self):
        with pytest.raises(UnknownPartitionError):
            Topic(name="t", num_partitions=2).partition(5)

    def test_all_records_and_totals(self):
        topic = Topic(name="t", num_partitions=2)
        for i in range(10):
            topic.append(Record(value=i), round_robin_counter=i)
        assert topic.total_records() == 10
        assert len(topic.all_records()) == 10
        assert topic.total_bytes() > 0


class TestRecord:
    def test_size_bytes_for_bytes_payload(self):
        assert Record(value=b"123456").size_bytes() == 6 + 16

    def test_size_bytes_includes_key(self):
        keyed = Record(value=b"123456", key="abcd")
        assert keyed.size_bytes() == 6 + 4 + 16

    def test_size_bytes_for_object_with_size(self):
        class Sized:
            def size_bytes(self):
                return 100

        assert Record(value=Sized()).size_bytes() == 100 + 16

    def test_with_position_preserves_value(self):
        record = Record(value="v", key="k", timestamp=3.0)
        positioned = record.with_position("topic", 1, 7)
        assert positioned.value == "v"
        assert positioned.key == "k"
        assert positioned.timestamp == 3.0
        assert (positioned.topic, positioned.partition, positioned.offset) == ("topic", 1, 7)
