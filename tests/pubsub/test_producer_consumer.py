"""Tests for the producer and consumer APIs."""

import pytest

from repro.pubsub import BrokerCluster, Consumer, ConsumerGroup, Producer
from repro.pubsub.errors import PubSubError


@pytest.fixture
def cluster() -> BrokerCluster:
    cluster = BrokerCluster(num_brokers=2)
    cluster.create_topic("answers", num_partitions=3)
    cluster.create_topic("keys", num_partitions=3)
    return cluster


class TestProducer:
    def test_send_tracks_metrics(self, cluster):
        producer = Producer(cluster)
        producer.send("answers", value=b"payload", key="m1")
        assert producer.records_sent == 1
        assert producer.bytes_sent > 0

    def test_send_batch_preserves_order_per_key(self, cluster):
        producer = Producer(cluster)
        producer.send_batch("answers", [b"a", b"b", b"c"], key="same")
        consumer = Consumer(cluster)
        consumer.subscribe(["answers"])
        values = [r.value for r in consumer.poll()]
        assert values == [b"a", b"b", b"c"]

    def test_timestamps_increase_when_not_provided(self, cluster):
        producer = Producer(cluster)
        first = producer.send("answers", b"a")
        second = producer.send("answers", b"b")
        assert second.timestamp > first.timestamp

    def test_explicit_timestamp_used(self, cluster):
        producer = Producer(cluster)
        record = producer.send("answers", b"a", timestamp=123.5)
        assert record.timestamp == 123.5


class TestConsumer:
    def test_poll_before_subscribe_rejected(self, cluster):
        with pytest.raises(PubSubError):
            Consumer(cluster).poll()

    def test_poll_returns_only_new_records(self, cluster):
        producer = Producer(cluster)
        consumer = Consumer(cluster)
        consumer.subscribe(["answers"])
        producer.send("answers", b"first")
        assert [r.value for r in consumer.poll()] == [b"first"]
        assert consumer.poll() == []
        producer.send("answers", b"second")
        assert [r.value for r in consumer.poll()] == [b"second"]

    def test_poll_across_topics(self, cluster):
        producer = Producer(cluster)
        consumer = Consumer(cluster)
        consumer.subscribe(["answers", "keys"])
        producer.send("answers", b"a")
        producer.send("keys", b"k")
        values = {r.value for r in consumer.poll()}
        assert values == {b"a", b"k"}

    def test_seek_to_beginning(self, cluster):
        producer = Producer(cluster)
        consumer = Consumer(cluster)
        consumer.subscribe(["answers"])
        producer.send("answers", b"a")
        consumer.poll()
        consumer.seek_to_beginning()
        assert [r.value for r in consumer.poll()] == [b"a"]

    def test_lag(self, cluster):
        producer = Producer(cluster)
        consumer = Consumer(cluster)
        consumer.subscribe(["answers"])
        for i in range(5):
            producer.send("answers", bytes([i]))
        assert consumer.lag() == 5
        consumer.poll()
        assert consumer.lag() == 0

    def test_max_records_limits_poll(self, cluster):
        producer = Producer(cluster)
        consumer = Consumer(cluster)
        consumer.subscribe(["answers"])
        for i in range(10):
            producer.send("answers", bytes([i]))
        assert len(consumer.poll(max_records=4)) == 4
        assert len(consumer.poll()) == 6

    def test_subscribe_unknown_topic_rejected(self, cluster):
        consumer = Consumer(cluster)
        with pytest.raises(Exception):
            consumer.subscribe(["missing"])


class TestConsumerGroup:
    def test_members_split_partitions(self, cluster):
        producer = Producer(cluster)
        for i in range(30):
            producer.send("answers", value=i, key=f"key-{i}")
        group = ConsumerGroup(cluster, group_id="g", num_members=3)
        group.subscribe(["answers"])
        records = group.poll_all()
        assert len(records) == 30

    def test_poll_all_does_not_duplicate(self, cluster):
        producer = Producer(cluster)
        for i in range(10):
            producer.send("answers", value=i)
        group = ConsumerGroup(cluster, group_id="g", num_members=2)
        group.subscribe(["answers"])
        assert len(group.poll_all()) == 10
        assert group.poll_all() == []

    def test_requires_members(self, cluster):
        with pytest.raises(PubSubError):
            ConsumerGroup(cluster, group_id="g", num_members=0)

    def test_poll_before_subscribe_rejected(self, cluster):
        group = ConsumerGroup(cluster, group_id="g", num_members=1)
        with pytest.raises(PubSubError):
            group.poll_all()
