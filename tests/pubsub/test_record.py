"""Tests for record payload sizing, including the shard-batch records."""

from repro.pubsub.record import Record


class _Sized:
    def __init__(self, n: int):
        self.n = n

    def size_bytes(self) -> int:
        return self.n


class TestRecordSizing:
    def test_bytes_payload(self):
        assert Record(value=b"12345").size_bytes() == 5 + 16

    def test_string_payload(self):
        assert Record(value="abc").size_bytes() == 3 + 16

    def test_sized_object_payload(self):
        assert Record(value=_Sized(100)).size_bytes() == 100 + 16

    def test_key_adds_its_length(self):
        assert Record(value=b"1234", key="k1").size_bytes() == 4 + 2 + 16

    def test_batch_payload_sums_elements(self):
        """A batch record is charged the sum of its elements plus one framing."""
        batch = (_Sized(10), _Sized(20), b"123")
        assert Record(value=batch).size_bytes() == 10 + 20 + 3 + 16

    def test_nested_batch_payload(self):
        assert Record(value=[(b"12", b"34"), b"5"]).size_bytes() == 5 + 16
