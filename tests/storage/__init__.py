"""Tests for repro.storage."""
