"""Tests for the replicated block store (HDFS substitute)."""

import pytest

from repro.storage import BlockStore, StorageError


class TestBlockStoreBasics:
    def test_create_and_exists(self):
        store = BlockStore()
        store.create("f")
        assert store.exists("f")
        assert not store.exists("g")

    def test_duplicate_create_rejected(self):
        store = BlockStore()
        store.create("f")
        with pytest.raises(StorageError):
            store.create("f")

    def test_append_then_read_roundtrip(self):
        store = BlockStore()
        store.append("f", b"hello ")
        store.append("f", b"world")
        assert store.read("f") == b"hello world"

    def test_append_creates_missing_file(self):
        store = BlockStore()
        store.append("auto", b"data")
        assert store.exists("auto")

    def test_large_append_spans_blocks(self):
        store = BlockStore(block_size=10)
        payload = bytes(range(256)) * 4
        store.append("big", payload)
        assert store.read("big") == payload
        assert store.file_length("big") == len(payload)

    def test_empty_append_is_noop(self):
        store = BlockStore()
        store.append("f", b"")
        assert store.read("f") == b""

    def test_read_missing_file_rejected(self):
        with pytest.raises(StorageError):
            BlockStore().read("missing")

    def test_list_files(self):
        store = BlockStore()
        store.append("b", b"1")
        store.append("a", b"2")
        assert store.list_files() == ["a", "b"]

    def test_delete(self):
        store = BlockStore()
        store.append("f", b"data")
        store.delete("f")
        assert not store.exists("f")
        with pytest.raises(StorageError):
            store.read("f")

    def test_delete_missing_rejected(self):
        with pytest.raises(StorageError):
            BlockStore().delete("nope")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(StorageError):
            BlockStore(num_nodes=0)
        with pytest.raises(StorageError):
            BlockStore(num_nodes=2, replication=3)
        with pytest.raises(StorageError):
            BlockStore(block_size=0)


class TestReplicationAndFailures:
    def test_replicas_are_placed_on_distinct_nodes(self):
        store = BlockStore(num_nodes=3, replication=2)
        store.append("f", b"x" * 100)
        used = [node.used_bytes() for node in store.nodes]
        assert sum(1 for u in used if u > 0) == 2

    def test_total_used_accounts_replication(self):
        store = BlockStore(num_nodes=3, replication=3, block_size=1024)
        store.append("f", b"x" * 100)
        assert store.total_used_bytes() == 300

    def test_read_survives_single_node_failure(self):
        store = BlockStore(num_nodes=3, replication=2, block_size=8)
        payload = b"the randomized answers survive failures"
        store.append("f", payload)
        store.fail_node(0)
        assert store.read("f") == payload

    def test_read_fails_when_all_replicas_down(self):
        store = BlockStore(num_nodes=2, replication=2, block_size=8)
        store.append("f", b"data")
        store.fail_node(0)
        store.fail_node(1)
        with pytest.raises(StorageError):
            store.read("f")

    def test_recovered_node_serves_reads_again(self):
        store = BlockStore(num_nodes=2, replication=2, block_size=8)
        store.append("f", b"data")
        store.fail_node(0)
        store.fail_node(1)
        store.recover_node(1)
        assert store.read("f") == b"data"

    def test_write_fails_without_enough_live_nodes(self):
        store = BlockStore(num_nodes=2, replication=2)
        store.fail_node(0)
        with pytest.raises(StorageError):
            store.append("f", b"data")

    def test_unknown_node_rejected(self):
        with pytest.raises(StorageError):
            BlockStore(num_nodes=2).fail_node(9)
