"""Tests for the basic RAPPOR baseline."""

import math
import random

import pytest

from repro.baselines import RapporAggregator, RapporClient, RapporParams


class TestRapporParams:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RapporParams(num_bits=0)
        with pytest.raises(ValueError):
            RapporParams(f=0.0)
        with pytest.raises(ValueError):
            RapporParams(f=1.0)
        with pytest.raises(ValueError):
            RapporParams(num_hashes=0)
        with pytest.raises(ValueError):
            RapporParams(p=-0.1)

    def test_one_time_epsilon_formula(self):
        params = RapporParams(f=0.5, num_hashes=1)
        assert params.one_time_epsilon() == pytest.approx(2 * math.log(0.75 / 0.25))

    def test_smaller_f_means_weaker_privacy(self):
        assert RapporParams(f=0.1).one_time_epsilon() > RapporParams(f=0.9).one_time_epsilon()


class TestRapporClient:
    def test_report_is_binary_and_right_length(self):
        client = RapporClient(RapporParams(num_bits=32), rng=random.Random(1))
        report = client.report("value-a")
        assert len(report) == 32
        assert all(bit in (0, 1) for bit in report)

    def test_permanent_response_is_memoized(self):
        """Longitudinal privacy: the same value always maps to the same permanent bits."""
        client = RapporClient(RapporParams(num_bits=32, f=0.5), rng=random.Random(2))
        assert client.report("value-a") == client.report("value-a")

    def test_instantaneous_layer_varies_reports(self):
        params = RapporParams(num_bits=32, f=0.5, p=0.3, q=0.7)
        client = RapporClient(params, rng=random.Random(3))
        reports = {tuple(client.report("value-a")) for _ in range(20)}
        assert len(reports) > 1

    def test_different_values_give_different_bloom_bits(self):
        client = RapporClient(RapporParams(num_bits=64, f=0.01), rng=random.Random(4))
        assert client.report("value-a") != client.report("value-b")


class TestRapporAggregator:
    def test_bit_count_estimator_recovers_truth(self):
        params = RapporParams(num_bits=16, f=0.5)
        rng = random.Random(7)
        candidate_values = [f"v{i}" for i in range(4)]
        # 4000 clients, uniformly choosing among 4 values.
        reports = []
        truth = {value: 0 for value in candidate_values}
        for i in range(4_000):
            value = candidate_values[i % 4]
            truth[value] += 1
            client = RapporClient(params, rng=rng)
            reports.append(client.report(value))
        aggregator = RapporAggregator(params)
        estimates = aggregator.estimate_value_counts(reports, candidate_values)
        for value in candidate_values:
            assert estimates[value] == pytest.approx(truth[value], rel=0.15)

    def test_empty_reports(self):
        aggregator = RapporAggregator(RapporParams(num_bits=8))
        assert aggregator.estimate_bit_counts([]) == [0.0] * 8
