"""Tests for the SplitX latency comparison model (Figure 6)."""

import pytest

from repro.baselines import PrivApproxLatencyModel, SplitXModel


class TestSplitXModel:
    def test_latency_breakdown_components(self):
        breakdown = SplitXModel().latency(10_000)
        assert breakdown.transmission_seconds > 0
        assert breakdown.computation_seconds > 0
        assert breakdown.shuffling_seconds > 0
        assert breakdown.total_seconds == pytest.approx(
            breakdown.transmission_seconds
            + breakdown.computation_seconds
            + breakdown.shuffling_seconds
        )

    def test_latency_grows_with_clients(self):
        model = SplitXModel()
        series = model.latency_series([10**k for k in range(2, 8)])
        totals = [b.total_seconds for b in series]
        assert totals == sorted(totals)

    def test_paper_anchor_point_at_one_million_clients(self):
        """Paper: SplitX takes ~40.27 s at 10^6 clients."""
        assert SplitXModel().latency(10**6).total_seconds == pytest.approx(40.27, rel=0.1)

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            SplitXModel().latency(0)


class TestPrivApproxLatencyModel:
    def test_paper_anchor_point_at_one_million_clients(self):
        """Paper: PrivApprox takes ~6.21 s at 10^6 clients."""
        assert PrivApproxLatencyModel().latency(10**6) == pytest.approx(6.21, rel=0.1)

    def test_speedup_at_one_million_clients(self):
        """Paper: 6.48x speedup over SplitX at 10^6 clients."""
        speedup = PrivApproxLatencyModel().speedup_versus_splitx(10**6)
        assert speedup == pytest.approx(6.48, rel=0.15)

    def test_privapprox_faster_at_every_scale(self):
        """Figure 6: PrivApprox's proxy latency is below SplitX's at all client counts."""
        splitx = SplitXModel()
        privapprox = PrivApproxLatencyModel()
        for exponent in range(2, 9):
            n = 10**exponent
            assert privapprox.latency(n) < splitx.latency(n).total_seconds

    def test_gap_is_roughly_an_order_of_magnitude_at_scale(self):
        speedups = [
            PrivApproxLatencyModel().speedup_versus_splitx(10**k) for k in range(5, 9)
        ]
        assert all(4.0 < s < 12.0 for s in speedups)

    def test_latency_series_monotone(self):
        series = PrivApproxLatencyModel().latency_series([100, 10_000, 1_000_000])
        assert series == sorted(series)

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            PrivApproxLatencyModel().latency(-5)
