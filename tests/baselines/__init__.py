"""Tests for repro.baselines."""
