"""Tests for the Paillier additively homomorphic scheme (Table 2 comparator)."""

import random

import pytest

from repro.crypto.paillier import generate_paillier_keypair

KEY_BITS = 256


@pytest.fixture(scope="module")
def keypair():
    return generate_paillier_keypair(key_size_bits=KEY_BITS, seed=19)


class TestPaillier:
    def test_roundtrip(self, keypair):
        rng = random.Random(3)
        for message in (0, 1, 42, 999_983, 2**30):
            ciphertext = keypair.public.encrypt(message, rng)
            assert keypair.private.decrypt(ciphertext) == message

    def test_encryption_is_probabilistic(self, keypair):
        rng = random.Random(5)
        c1 = keypair.public.encrypt(7, rng)
        c2 = keypair.public.encrypt(7, rng)
        assert c1 != c2
        assert keypair.private.decrypt(c1) == keypair.private.decrypt(c2) == 7

    def test_additive_homomorphism(self, keypair):
        rng = random.Random(7)
        a, b = 1234, 5678
        ca = keypair.public.encrypt(a, rng)
        cb = keypair.public.encrypt(b, rng)
        assert keypair.private.decrypt(keypair.public.add(ca, cb)) == a + b

    def test_add_plain(self, keypair):
        rng = random.Random(9)
        ciphertext = keypair.public.encrypt(100, rng)
        assert keypair.private.decrypt(keypair.public.add_plain(ciphertext, 23)) == 123

    def test_aggregation_use_case(self, keypair):
        """Summing many client counts homomorphically, as prior systems do."""
        rng = random.Random(11)
        counts = [rng.randint(0, 5) for _ in range(50)]
        ciphertexts = [keypair.public.encrypt(c, rng) for c in counts]
        aggregate = ciphertexts[0]
        for ciphertext in ciphertexts[1:]:
            aggregate = keypair.public.add(aggregate, ciphertext)
        assert keypair.private.decrypt(aggregate) == sum(counts)

    def test_message_out_of_range_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.encrypt(keypair.public.n)

    def test_ciphertext_out_of_range_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.private.decrypt(keypair.public.n_squared)

    def test_distinct_keypairs(self):
        a = generate_paillier_keypair(KEY_BITS, seed=1)
        b = generate_paillier_keypair(KEY_BITS, seed=2)
        assert a.public.n != b.public.n
