"""Tests for the Goldwasser-Micali bit-encryption scheme (Table 2 comparator)."""

import random

import pytest

from repro.crypto.goldwasser_micali import generate_gm_keypair

KEY_BITS = 256


@pytest.fixture(scope="module")
def keypair():
    return generate_gm_keypair(key_size_bits=KEY_BITS, seed=11)


class TestGoldwasserMicali:
    def test_bit_roundtrip(self, keypair):
        rng = random.Random(5)
        for bit in (0, 1, 0, 1, 1, 0):
            ciphertext = keypair.public.encrypt_bit(bit, rng)
            assert keypair.private.decrypt_bit(ciphertext) == bit

    def test_bit_vector_roundtrip(self, keypair):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]
        ciphertexts = keypair.public.encrypt_bits(bits, rng=random.Random(9))
        assert keypair.private.decrypt_bits(ciphertexts) == bits

    def test_encryption_is_probabilistic(self, keypair):
        rng = random.Random(13)
        c1 = keypair.public.encrypt_bit(1, rng)
        c2 = keypair.public.encrypt_bit(1, rng)
        assert c1 != c2
        assert keypair.private.decrypt_bit(c1) == keypair.private.decrypt_bit(c2) == 1

    def test_invalid_bit_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.encrypt_bit(2, random.Random(0))

    def test_xor_homomorphism(self, keypair):
        """GM is XOR-homomorphic: multiplying ciphertexts XORs plaintexts."""
        rng = random.Random(17)
        for a in (0, 1):
            for b in (0, 1):
                ca = keypair.public.encrypt_bit(a, rng)
                cb = keypair.public.encrypt_bit(b, rng)
                combined = (ca * cb) % keypair.public.n
                assert keypair.private.decrypt_bit(combined) == a ^ b

    def test_distinct_keypairs(self):
        a = generate_gm_keypair(KEY_BITS, seed=1)
        b = generate_gm_keypair(KEY_BITS, seed=2)
        assert a.public.n != b.public.n

    def test_long_vector(self, keypair):
        rng = random.Random(23)
        bits = [rng.randint(0, 1) for _ in range(100)]
        ciphertexts = keypair.public.encrypt_bits(bits, rng=rng)
        assert keypair.private.decrypt_bits(ciphertexts) == bits
