"""Regression tests: the vectorized XOR path against the scalar reference.

``xor_bytes`` / ``xor_many`` now operate on whole words via ``int.from_bytes``;
``xor_bytes_scalar`` keeps the original byte-at-a-time loop as the executable
specification.  These tests pin the two together bit-for-bit, and pin the
bulk keystream refill to the one-block-at-a-time stream it replaced.
"""

import hashlib
import random
import struct

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prng import KeystreamGenerator
from repro.crypto.xor import xor_bytes, xor_bytes_scalar, xor_many


def reference_keystream(seed: bytes, length: int) -> bytes:
    """SHA-256 counter-mode stream, one block at a time (the old _refill)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(seed + struct.pack(">Q", counter)).digest())
        counter += 1
    return bytes(out[:length])


class TestXorBytesRegression:
    @pytest.mark.parametrize("length", [0, 1, 2, 7, 8, 9, 31, 32, 33, 255, 4096])
    def test_matches_scalar_on_random_payloads(self, length):
        rng = random.Random(length)
        a = rng.randbytes(length)
        b = rng.randbytes(length)
        assert xor_bytes(a, b) == xor_bytes_scalar(a, b)

    def test_empty_messages(self):
        assert xor_bytes(b"", b"") == b""
        assert xor_bytes_scalar(b"", b"") == b""
        assert xor_many([b"", b"", b""]) == b""

    def test_single_byte_messages(self):
        assert xor_bytes(b"\xa5", b"\x5a") == b"\xff"
        assert xor_bytes(b"\x00", b"\x00") == b"\x00"
        assert xor_bytes(b"\xff", b"\xff") == b"\x00"

    def test_both_reject_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")
        with pytest.raises(ValueError):
            xor_bytes_scalar(b"ab", b"abc")

    def test_xor_many_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            xor_many([b"ab", b"abc"])

    @given(data=st.lists(st.binary(min_size=0, max_size=128), min_size=2, max_size=6))
    def test_xor_many_matches_scalar_fold(self, data):
        length = len(data[0])
        parts = [part[:length].ljust(length, b"\x00") for part in data]
        expected = parts[0]
        for part in parts[1:]:
            expected = xor_bytes_scalar(expected, part)
        assert xor_many(parts) == expected

    @given(a=st.binary(min_size=0, max_size=512))
    def test_matches_scalar_property(self, a):
        b = bytes(reversed(a))
        assert xor_bytes(a, b) == xor_bytes_scalar(a, b)


class TestKeystreamBulkRefill:
    @pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 100, 1000, 10_000])
    def test_bulk_request_matches_reference_stream(self, length):
        generator = KeystreamGenerator(seed=b"bulk-seed")
        assert generator.next_bytes(length) == reference_keystream(b"bulk-seed", length)

    def test_chunked_reads_equal_one_bulk_read(self):
        bulk = KeystreamGenerator(seed=b"chunks").next_bytes(1024)
        chunked = KeystreamGenerator(seed=b"chunks")
        pieces = []
        rng = random.Random(0)
        remaining = 1024
        while remaining:
            take = min(remaining, rng.randint(1, 97))
            pieces.append(chunked.next_bytes(take))
            remaining -= take
        assert b"".join(pieces) == bulk
