"""Tests for the SHA-256 counter-mode keystream generator."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prng import KeystreamGenerator, secure_random_bytes


class TestSecureRandomBytes:
    def test_returns_requested_length(self):
        assert len(secure_random_bytes(16)) == 16

    def test_zero_length(self):
        assert secure_random_bytes(0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            secure_random_bytes(-1)

    def test_successive_calls_differ(self):
        assert secure_random_bytes(32) != secure_random_bytes(32)


class TestKeystreamGenerator:
    def test_same_seed_same_stream(self):
        a = KeystreamGenerator(seed=b"seed")
        b = KeystreamGenerator(seed=b"seed")
        assert a.next_bytes(100) == b.next_bytes(100)

    def test_different_seed_different_stream(self):
        a = KeystreamGenerator(seed=b"seed-a")
        b = KeystreamGenerator(seed=b"seed-b")
        assert a.next_bytes(64) != b.next_bytes(64)

    def test_stream_is_stateful(self):
        gen = KeystreamGenerator(seed=b"seed")
        first = gen.next_bytes(32)
        second = gen.next_bytes(32)
        assert first != second

    def test_chunked_reads_match_single_read(self):
        a = KeystreamGenerator(seed=b"seed")
        b = KeystreamGenerator(seed=b"seed")
        chunked = a.next_bytes(10) + a.next_bytes(7) + a.next_bytes(23)
        assert chunked == b.next_bytes(40)

    def test_default_seed_is_random(self):
        assert KeystreamGenerator().seed != KeystreamGenerator().seed

    def test_non_bytes_seed_rejected(self):
        with pytest.raises(TypeError):
            KeystreamGenerator(seed="not-bytes")  # type: ignore[arg-type]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            KeystreamGenerator(seed=b"s").next_bytes(-5)

    def test_next_bits_range(self):
        gen = KeystreamGenerator(seed=b"bits")
        for nbits in (1, 5, 8, 13, 64):
            value = gen.next_bits(nbits)
            assert 0 <= value < (1 << nbits)

    def test_next_bits_zero(self):
        assert KeystreamGenerator(seed=b"s").next_bits(0) == 0

    def test_randint_below_range(self):
        gen = KeystreamGenerator(seed=b"randint")
        values = [gen.randint_below(10) for _ in range(200)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) > 5  # should hit most residues

    def test_randint_below_one_is_zero(self):
        assert KeystreamGenerator(seed=b"s").randint_below(1) == 0

    def test_randint_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            KeystreamGenerator(seed=b"s").randint_below(0)

    def test_random_fraction_in_unit_interval(self):
        gen = KeystreamGenerator(seed=b"frac")
        values = [gen.random_fraction() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=512))
    def test_determinism_property(self, seed, length):
        assert (
            KeystreamGenerator(seed=seed).next_bytes(length)
            == KeystreamGenerator(seed=seed).next_bytes(length)
        )

    def test_keystream_looks_balanced(self):
        """A crude sanity check: roughly half the bits of a long stream are set."""
        gen = KeystreamGenerator(seed=b"balance")
        data = gen.next_bytes(4096)
        ones = sum(bin(byte).count("1") for byte in data)
        total_bits = len(data) * 8
        assert 0.45 < ones / total_bits < 0.55
