"""Tests for the number-theoretic helpers behind the public-key schemes."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.numbers import (
    generate_prime,
    is_probable_prime,
    jacobi_symbol,
    lcm,
    modinv,
    random_coprime,
)


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 11, 13, 97, 101, 7919, 104729])
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 9, 15, 91, 561, 1105, 104730])
    def test_known_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_detected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_generate_prime_bit_length(self):
        rng = random.Random(1)
        for bits in (16, 32, 64):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4)


class TestModularArithmetic:
    def test_modinv_basic(self):
        assert (3 * modinv(3, 7)) % 7 == 1

    def test_modinv_large(self):
        m = 10**9 + 7
        a = 123456789
        assert (a * modinv(a, m)) % m == 1

    def test_modinv_nonexistent(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=1, max_value=10_000))
    def test_lcm_property(self, a, b):
        value = lcm(a, b)
        assert value % a == 0 and value % b == 0
        assert value == abs(a * b) // math.gcd(a, b)

    def test_random_coprime(self):
        rng = random.Random(3)
        n = 360
        for _ in range(50):
            c = random_coprime(n, rng)
            assert 1 <= c < n
            assert math.gcd(c, n) == 1


class TestJacobiSymbol:
    def test_quadratic_residues_mod_prime(self):
        p = 23
        residues = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in residues else -1
            assert jacobi_symbol(a, p) == expected

    def test_zero_when_not_coprime(self):
        assert jacobi_symbol(15, 45) == 0

    def test_requires_odd_modulus(self):
        with pytest.raises(ValueError):
            jacobi_symbol(3, 10)

    def test_multiplicative_in_numerator(self):
        n = 77
        for a in range(1, 20):
            for b in range(1, 20):
                assert jacobi_symbol(a * b, n) == jacobi_symbol(a, n) * jacobi_symbol(b, n)
