"""Tests for the textbook RSA implementation (Table 2 comparator)."""

import pytest

from repro.crypto.rsa import generate_rsa_keypair

# Small keys keep the tests fast; the benchmark uses 1024-bit keys.
KEY_BITS = 256


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(key_size_bits=KEY_BITS, seed=7)


class TestRsa:
    def test_key_size(self, keypair):
        assert abs(keypair.public.key_size_bits - KEY_BITS) <= 1

    def test_encrypt_decrypt_roundtrip_int(self, keypair):
        message = 123456789
        ciphertext = keypair.public.encrypt_int(message)
        assert keypair.private.decrypt_int(ciphertext) == message

    def test_encrypt_decrypt_roundtrip_bytes(self, keypair):
        message = b"answer vector"
        ciphertext = keypair.public.encrypt_bytes(message)
        assert keypair.private.decrypt_bytes(ciphertext, len(message)) == message

    def test_ciphertext_differs_from_plaintext(self, keypair):
        assert keypair.public.encrypt_int(42) != 42

    def test_encryption_is_deterministic_textbook(self, keypair):
        # Textbook RSA has no padding, so identical plaintexts encrypt identically.
        assert keypair.public.encrypt_int(99) == keypair.public.encrypt_int(99)

    def test_message_out_of_range_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.encrypt_int(keypair.public.n)
        with pytest.raises(ValueError):
            keypair.public.encrypt_int(-1)

    def test_ciphertext_out_of_range_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.private.decrypt_int(keypair.private.n)

    def test_distinct_keypairs(self):
        a = generate_rsa_keypair(KEY_BITS, seed=1)
        b = generate_rsa_keypair(KEY_BITS, seed=2)
        assert a.public.n != b.public.n

    def test_roundtrip_many_messages(self, keypair):
        for message in (0, 1, 2, 255, 65537, 10**20):
            assert keypair.private.decrypt_int(keypair.public.encrypt_int(message)) == message

    def test_small_key_rejected(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(key_size_bits=32)
