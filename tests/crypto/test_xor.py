"""Tests for the XOR one-time-pad share-splitting scheme."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prng import KeystreamGenerator
from repro.crypto.xor import (
    MessageShare,
    XorCipher,
    join_shares,
    join_shares_batch,
    split_message,
    xor_bytes,
    xor_many,
)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_self_inverse(self):
        a, b = b"hello world", b"key key key"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    def test_xor_many_single(self):
        assert xor_many([b"abc"]) == b"abc"

    def test_xor_many_empty_rejected(self):
        with pytest.raises(ValueError):
            xor_many([])


class TestXorCipher:
    def test_roundtrip_two_shares(self):
        cipher = XorCipher(num_shares=2, keystream=KeystreamGenerator(seed=b"k"))
        shares = cipher.encrypt(b"private answer")
        assert len(shares) == 2
        assert XorCipher.decrypt(shares) == b"private answer"

    @pytest.mark.parametrize("num_shares", [2, 3, 4, 5])
    def test_roundtrip_many_shares(self, num_shares):
        cipher = XorCipher(num_shares=num_shares, keystream=KeystreamGenerator(seed=b"k"))
        message = b"M" * 37
        shares = cipher.encrypt(message)
        assert len(shares) == num_shares
        assert XorCipher.decrypt(shares) == message

    def test_rejects_fewer_than_two_shares(self):
        with pytest.raises(ValueError):
            XorCipher(num_shares=1)

    def test_shares_share_message_id(self):
        shares = XorCipher(num_shares=3).encrypt(b"payload", message_id="mid-1")
        assert {s.message_id for s in shares} == {"mid-1"}

    def test_share_indices_are_sequential(self):
        shares = XorCipher(num_shares=4).encrypt(b"payload")
        assert [s.index for s in shares] == [0, 1, 2, 3]

    def test_no_single_share_reveals_message(self):
        """Every individual share must differ from the plaintext (overwhelmingly likely)."""
        message = b"the secret answer vector!"
        shares = XorCipher(num_shares=3, keystream=KeystreamGenerator(seed=b"x")).encrypt(message)
        for share in shares:
            assert share.payload != message

    def test_missing_share_does_not_decrypt(self):
        message = b"confidential"
        shares = XorCipher(num_shares=3, keystream=KeystreamGenerator(seed=b"y")).encrypt(message)
        assert join_shares(shares[:2]) != message

    def test_shares_have_message_length(self):
        message = b"0123456789"
        shares = XorCipher(num_shares=2).encrypt(message)
        assert all(len(s.payload) == len(message) for s in shares)

    def test_empty_message_roundtrip(self):
        shares = XorCipher(num_shares=2).encrypt(b"")
        assert XorCipher.decrypt(shares) == b""


class TestSplitJoinHelpers:
    def test_split_message_roundtrip(self):
        shares = split_message(b"hello", num_proxies=3, keystream=KeystreamGenerator(seed=b"s"))
        assert join_shares(shares) == b"hello"

    def test_join_requires_two_shares(self):
        share = MessageShare(message_id="m", payload=b"abc", index=0)
        with pytest.raises(ValueError):
            join_shares([share])

    def test_join_rejects_mixed_message_ids(self):
        a = MessageShare(message_id="m1", payload=b"abc", index=0)
        b = MessageShare(message_id="m2", payload=b"abc", index=1)
        with pytest.raises(ValueError):
            join_shares([a, b])

    def test_join_rejects_mismatched_lengths(self):
        a = MessageShare(message_id="m", payload=b"abc", index=0)
        b = MessageShare(message_id="m", payload=b"abcd", index=1)
        with pytest.raises(ValueError):
            join_shares([a, b])

    def test_join_is_order_independent(self):
        shares = split_message(b"order free", num_proxies=4)
        assert join_shares(list(reversed(shares))) == b"order free"

    def test_share_size_includes_mid_overhead(self):
        share = MessageShare(message_id="m", payload=b"12345678", index=0)
        assert share.size_bytes() == 8 + 16

    @given(
        message=st.binary(min_size=0, max_size=256),
        num_proxies=st.integers(min_value=2, max_value=6),
        seed=st.binary(min_size=1, max_size=16),
    )
    def test_split_join_roundtrip_property(self, message, num_proxies, seed):
        """Invariant: XOR of all shares always recovers the message."""
        shares = split_message(
            message, num_proxies=num_proxies, keystream=KeystreamGenerator(seed=seed)
        )
        assert len(shares) == num_proxies
        assert join_shares(shares) == message


class TestJoinSharesBatch:
    """The batched shard-decrypt path must match join_shares group-for-group."""

    def make_groups(self, num_groups: int, num_proxies: int = 2) -> list:
        keystream = KeystreamGenerator(seed=b"batch")
        return [
            split_message(
                f"answer-{index:04d}".encode(), num_proxies=num_proxies, keystream=keystream
            )
            for index in range(num_groups)
        ]

    def test_matches_scalar_reference(self):
        groups = self.make_groups(17)
        assert join_shares_batch(groups) == [join_shares(g) for g in groups]

    def test_matches_reference_across_share_counts(self):
        """Groups of different proxy counts coexist in one batch."""
        groups = self.make_groups(5, num_proxies=2) + self.make_groups(5, num_proxies=4)
        assert join_shares_batch(groups) == [join_shares(g) for g in groups]

    def test_mixed_lengths_bucket_separately(self):
        keystream = KeystreamGenerator(seed=b"mixed")
        groups = [
            split_message(b"short", num_proxies=2, keystream=keystream),
            split_message(b"a much longer message body", num_proxies=2, keystream=keystream),
            split_message(b"short", num_proxies=2, keystream=keystream),
        ]
        assert join_shares_batch(groups) == [join_shares(g) for g in groups]

    def test_malformed_groups_yield_none_not_poison(self):
        """Where join_shares raises, the batch yields None — in place."""
        good = self.make_groups(3)
        lone = [MessageShare(message_id="m", payload=b"abc", index=0)]
        mixed_ids = [
            MessageShare(message_id="m1", payload=b"abc", index=0),
            MessageShare(message_id="m2", payload=b"abc", index=1),
        ]
        unequal = [
            MessageShare(message_id="m", payload=b"abc", index=0),
            MessageShare(message_id="m", payload=b"abcd", index=1),
        ]
        groups = [good[0], lone, good[1], mixed_ids, unequal, good[2]]
        batch = join_shares_batch(groups)
        assert batch[0] == join_shares(good[0])
        assert batch[2] == join_shares(good[1])
        assert batch[5] == join_shares(good[2])
        assert batch[1] is None and batch[3] is None and batch[4] is None
        for bad in (lone, mixed_ids, unequal):
            with pytest.raises(ValueError):
                join_shares(bad)

    def test_empty_payloads_and_empty_batch(self):
        assert join_shares_batch([]) == []
        empty = split_message(b"", num_proxies=3, keystream=KeystreamGenerator(seed=b"e"))
        assert join_shares_batch([empty, empty]) == [b"", b""]

    @given(
        num_groups=st.integers(min_value=1, max_value=12),
        num_proxies=st.integers(min_value=2, max_value=5),
        seed=st.binary(min_size=1, max_size=8),
    )
    def test_batch_equals_reference_property(self, num_groups, num_proxies, seed):
        keystream = KeystreamGenerator(seed=seed)
        groups = [
            split_message(bytes([index]) * (index + 1), num_proxies=num_proxies,
                          keystream=keystream)
            for index in range(num_groups)
        ]
        assert join_shares_batch(groups) == [join_shares(g) for g in groups]
