"""Tests for repro.crypto."""
