"""Tests for the device cost models (Tables 2 and 3 substrate)."""

import pytest

from repro.netsim import DeviceKind, DeviceProfile, OperationKind


class TestDeviceProfiles:
    def test_three_devices(self):
        devices = DeviceProfile.all_devices()
        assert [d.kind for d in devices] == [
            DeviceKind.PHONE,
            DeviceKind.LAPTOP,
            DeviceKind.SERVER,
        ]

    def test_server_is_fastest_for_every_operation(self):
        phone, laptop, server = DeviceProfile.all_devices()
        for operation in OperationKind:
            assert server.ops_per_second(operation) >= laptop.ops_per_second(operation)
            assert laptop.ops_per_second(operation) >= phone.ops_per_second(operation)

    def test_xor_is_faster_than_public_key_schemes(self):
        """The headline of Table 2: XOR dwarfs RSA / GM / Paillier."""
        for device in DeviceProfile.all_devices():
            xor = device.ops_per_second(OperationKind.XOR_ENCRYPTION)
            assert xor > device.ops_per_second(OperationKind.RSA_ENCRYPT)
            assert xor > device.ops_per_second(OperationKind.GM_ENCRYPT)
            assert xor > device.ops_per_second(OperationKind.PAILLIER_ENCRYPT)

    def test_xor_decrypt_faster_than_encrypt(self):
        for device in DeviceProfile.all_devices():
            assert device.xor_decrypt_ops_per_second() > device.ops_per_second(
                OperationKind.XOR_ENCRYPTION
            )

    def test_paillier_is_slowest_encryption(self):
        for device in DeviceProfile.all_devices():
            paillier = device.ops_per_second(OperationKind.PAILLIER_ENCRYPT)
            assert paillier < device.ops_per_second(OperationKind.RSA_ENCRYPT)
            assert paillier < device.ops_per_second(OperationKind.GM_ENCRYPT)

    def test_seconds_per_op_is_inverse(self):
        server = DeviceProfile.server()
        rate = server.ops_per_second(OperationKind.SQLITE_READ)
        assert server.seconds_per_op(OperationKind.SQLITE_READ) == pytest.approx(1.0 / rate)

    def test_pipeline_throughput_bounded_by_slowest_stage(self):
        """Table 3: the client pipeline total is dominated by the DB read."""
        pipeline = [
            OperationKind.SQLITE_READ,
            OperationKind.RANDOMIZED_RESPONSE,
            OperationKind.XOR_ENCRYPTION,
        ]
        for device in DeviceProfile.all_devices():
            total = device.pipeline_ops_per_second(pipeline)
            slowest = min(device.ops_per_second(op) for op in pipeline)
            assert total < slowest
            assert total > 0.5 * slowest  # but the same order of magnitude

    def test_phone_pipeline_matches_paper_magnitude(self):
        """Paper reports ~1,116 ops/s total on the phone."""
        phone = DeviceProfile.phone()
        total = phone.pipeline_ops_per_second(
            [
                OperationKind.SQLITE_READ,
                OperationKind.RANDOMIZED_RESPONSE,
                OperationKind.XOR_ENCRYPTION,
            ]
        )
        assert 900 < total < 1_162

    def test_time_for_counts(self):
        laptop = DeviceProfile.laptop()
        one = laptop.time_for(OperationKind.XOR_ENCRYPTION, 1)
        thousand = laptop.time_for(OperationKind.XOR_ENCRYPTION, 1_000)
        assert thousand == pytest.approx(1_000 * one)

    def test_time_for_rejects_negative(self):
        with pytest.raises(ValueError):
            DeviceProfile.laptop().time_for(OperationKind.XOR_ENCRYPTION, -1)

    def test_pipeline_requires_operations(self):
        with pytest.raises(ValueError):
            DeviceProfile.server().pipeline_ops_per_second([])

    def test_speedup_versus(self):
        server = DeviceProfile.server()
        phone = DeviceProfile.phone()
        speedup = server.speedup_versus(phone, OperationKind.XOR_ENCRYPTION)
        assert speedup > 10  # the server is dramatically faster than the phone
