"""Tests for the traffic/latency model (Figure 9 substrate)."""

import pytest

from repro.netsim import NetworkModel


class TestTrafficModel:
    def test_traffic_scales_with_sampling_fraction(self):
        model = NetworkModel()
        low = model.traffic(num_answers_total=1_000_000, sampling_fraction=0.2, answer_bits=88)
        high = model.traffic(num_answers_total=1_000_000, sampling_fraction=1.0, answer_bits=88)
        assert high.total_bytes == pytest.approx(5 * low.total_bytes, rel=0.01)

    def test_sampling_at_60_percent_reduces_traffic_about_1_6x(self):
        """Paper: s=0.6 reduces network traffic by ~1.6x."""
        model = NetworkModel()
        sampled = model.traffic(10_000_000, 0.6, answer_bits=88)
        full = model.traffic(10_000_000, 1.0, answer_bits=88)
        assert sampled.reduction_versus(full) == pytest.approx(1.0 / 0.6, rel=0.02)

    def test_traffic_counts_all_shares(self):
        model = NetworkModel(num_proxies=3)
        report = model.traffic(1_000, 1.0, answer_bits=8)
        assert report.num_shares_per_answer == 3
        assert report.total_bytes == 1_000 * 3 * report.share_size_bytes

    def test_share_size_includes_overhead(self):
        model = NetworkModel(share_overhead_bytes=48)
        assert model.share_size_bytes(answer_bits=88) == 11 + 48

    def test_invalid_inputs_rejected(self):
        model = NetworkModel()
        with pytest.raises(ValueError):
            model.traffic(100, 1.5, 8)
        with pytest.raises(ValueError):
            model.traffic(-1, 0.5, 8)
        with pytest.raises(ValueError):
            model.share_size_bytes(0)
        with pytest.raises(ValueError):
            NetworkModel(num_proxies=1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=0)

    def test_traffic_sweep_is_monotone(self):
        model = NetworkModel()
        reports = model.traffic_sweep(1_000_000, [0.1, 0.2, 0.4, 0.6, 0.8, 1.0], 88)
        totals = [r.total_bytes for r in reports]
        assert totals == sorted(totals)


class TestLatencyModel:
    def test_latency_scales_with_sampling_fraction(self):
        model = NetworkModel()
        low = model.latency(1_000_000, 0.2, 88)
        high = model.latency(1_000_000, 1.0, 88)
        assert high.total_seconds > low.total_seconds

    def test_sampling_at_60_percent_speeds_up_about_1_6x(self):
        """Paper: s=0.6 gives ~1.66-1.68x lower latency than no sampling."""
        model = NetworkModel()
        sampled = model.latency(10_000_000, 0.6, 88)
        full = model.latency(10_000_000, 1.0, 88)
        assert sampled.speedup_versus(full) == pytest.approx(1.0 / 0.6, rel=0.05)

    def test_latency_components_positive(self):
        report = NetworkModel().latency(100_000, 0.5, 88)
        assert report.transfer_seconds > 0
        assert report.proxy_seconds > 0
        assert report.aggregator_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.transfer_seconds + report.proxy_seconds + report.aggregator_seconds
        )

    def test_aggregator_tier_throughput_below_proxy_tier(self):
        """Section 7.2 #I: the aggregator's per-message throughput is much lower."""
        model = NetworkModel()
        share_size = model.share_size_bytes(88)
        proxy_rate = model.proxy_tier.throughput(share_size).throughput_msgs_per_sec
        aggregator_rate = model.aggregator_tier.throughput(share_size).throughput_msgs_per_sec
        assert aggregator_rate < proxy_rate

    def test_latency_sweep_is_monotone(self):
        model = NetworkModel()
        reports = model.latency_sweep(1_000_000, [0.1, 0.4, 0.8, 1.0], 88)
        totals = [r.total_seconds for r in reports]
        assert totals == sorted(totals)

    def test_smaller_answers_mean_lower_latency(self):
        """The electricity case study (smaller messages) is faster at the proxies."""
        model = NetworkModel()
        taxi = model.latency(1_000_000, 0.6, answer_bits=88)
        electricity = model.latency(1_000_000, 0.6, answer_bits=56)
        assert electricity.total_seconds <= taxi.total_seconds


class TestRuntimeDeadlineEdges:
    """Edge cases the runtime's scenario deadline gate now depends on.

    The scenario layer (repro.runtime.scenario) charges every client a
    per-answer latency of device-pipeline time plus
    ``NetworkModel.latency(1, 1.0, answer_bits)`` and compares it to an epoch
    deadline.  These pin the model behaviors that comparison leans on.
    """

    def test_zero_workload_has_zero_latency(self):
        """An empty participation epoch costs nothing on the wire."""
        report = NetworkModel().latency(0, 1.0, 16)
        assert report.transfer_seconds == 0
        assert report.total_seconds == 0
        assert NetworkModel().traffic(0, 1.0, 16).total_bytes == 0

    def test_zero_sampling_is_a_zero_latency_model(self):
        """sampling_fraction=0 rounds every workload down to nothing."""
        model = NetworkModel()
        report = model.latency(1_000_000, 0.0, 88)
        assert report.total_seconds == 0
        assert model.traffic(1_000_000, 0.0, 88).num_answers_sampled == 0

    def test_single_answer_latency_is_positive_and_finite(self):
        """The per-client charge the deadline gate uses is a real number."""
        report = NetworkModel().latency(1, 1.0, 16)
        assert 0 < report.total_seconds < float("inf")

    def test_single_answer_latency_scales_with_bandwidth(self):
        """A starved network can push one answer past any fixed deadline."""
        fast = NetworkModel(bandwidth_bytes_per_sec=125e6).latency(1, 1.0, 16)
        slow = NetworkModel(bandwidth_bytes_per_sec=1_000.0).latency(1, 1.0, 16)
        assert slow.transfer_seconds > fast.transfer_seconds
        assert slow.transfer_seconds == pytest.approx(
            fast.transfer_seconds * 125e6 / 1_000.0
        )

    def test_deadline_below_single_answer_latency_exists(self):
        """There is always a deadline no client can meet — the gate's floor."""
        minimum = NetworkModel(bandwidth_bytes_per_sec=4_000.0).latency(
            1, 1.0, 16
        ).total_seconds
        assert minimum > 0.01  # the deadline-slow-net grid scenario's deadline
