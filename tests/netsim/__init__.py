"""Tests for repro.netsim."""
