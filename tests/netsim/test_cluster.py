"""Tests for the scale-up / scale-out tier throughput model (Figure 8 substrate)."""

import pytest

from repro.netsim import ClusterNode, ClusterTier


class TestClusterNode:
    def test_valid_node(self):
        node = ClusterNode(cores=8, core_rate_msgs_per_sec=1000)
        assert node.cores == 8

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            ClusterNode(cores=0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ClusterNode(core_rate_msgs_per_sec=0)


class TestClusterTier:
    def test_scale_up_is_monotone(self):
        tier = ClusterTier.proxy_tier()
        results = tier.scale_up_series([2, 4, 6, 8])
        throughputs = [r.throughput_msgs_per_sec for r in results]
        assert throughputs == sorted(throughputs)
        assert throughputs[-1] > throughputs[0]

    def test_scale_out_is_monotone(self):
        tier = ClusterTier.proxy_tier()
        results = tier.scale_out_series([1, 2, 3, 4])
        throughputs = [r.throughput_msgs_per_sec for r in results]
        assert throughputs == sorted(throughputs)

    def test_scaling_is_near_linear_but_sublinear(self):
        tier = ClusterTier.proxy_tier()
        one = tier.throughput(num_nodes=1, cores_per_node=8).throughput_msgs_per_sec
        four = tier.throughput(num_nodes=4, cores_per_node=8).throughput_msgs_per_sec
        assert 2.5 * one < four < 4.0 * one

    def test_throughput_falls_with_message_size(self):
        """Figure 5(b): throughput is inversely proportional to the bit-vector size."""
        tier = ClusterTier.proxy_tier()
        small = tier.throughput(message_size_bytes=16).throughput_msgs_per_sec
        medium = tier.throughput(message_size_bytes=1_024).throughput_msgs_per_sec
        large = tier.throughput(message_size_bytes=16_384).throughput_msgs_per_sec
        assert small >= medium > large
        # Roughly inverse proportionality once past the reference size.
        assert medium / large == pytest.approx(
            (16_384 + 32) / (1_024 + 32), rel=0.05
        )

    def test_aggregator_slower_than_proxy(self):
        """Section 7.2: the aggregator's join/analytics makes it the slower tier."""
        proxy = ClusterTier.proxy_tier(num_nodes=1)
        aggregator = ClusterTier.aggregator_tier(num_nodes=1)
        assert (
            aggregator.throughput(message_size_bytes=128).throughput_msgs_per_sec
            < proxy.throughput(message_size_bytes=128).throughput_msgs_per_sec
        )

    def test_aggregator_less_sensitive_to_message_size(self):
        """Section 7.2 #I: message size matters less for the aggregator tier."""
        proxy = ClusterTier.proxy_tier(num_nodes=1)
        aggregator = ClusterTier.aggregator_tier(num_nodes=1)
        proxy_ratio = (
            proxy.throughput(message_size_bytes=64).throughput_msgs_per_sec
            / proxy.throughput(message_size_bytes=1024).throughput_msgs_per_sec
        )
        aggregator_ratio = (
            aggregator.throughput(message_size_bytes=64).throughput_msgs_per_sec
            / aggregator.throughput(message_size_bytes=1024).throughput_msgs_per_sec
        )
        assert proxy_ratio > aggregator_ratio

    def test_processing_latency_linear_in_messages(self):
        tier = ClusterTier.proxy_tier()
        one = tier.processing_latency(10_000)
        ten = tier.processing_latency(100_000)
        assert ten == pytest.approx(10 * one)

    def test_processing_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            ClusterTier.proxy_tier().processing_latency(-1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ClusterTier(name="bad", num_nodes=0)
        with pytest.raises(ValueError):
            ClusterTier(name="bad", scale_up_efficiency=0.0)
        with pytest.raises(ValueError):
            ClusterTier(name="bad", scale_out_efficiency=1.5)

    def test_scaling_result_units(self):
        result = ClusterTier.proxy_tier().throughput()
        assert result.throughput_k_per_sec == pytest.approx(
            result.throughput_msgs_per_sec / 1000.0
        )
