"""Setuptools shim so editable installs work without the ``wheel`` package.

The offline environment ships setuptools 65 but not ``wheel``, so PEP 660
editable installs (which build an editable wheel) fail.  Keeping a ``setup.py``
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
